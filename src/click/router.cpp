#include "click/router.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "program/compiled_classifier.hpp"
#include "program/match_program.hpp"

namespace rb {

std::string Router::Format_(const char* fmt, const char* a, size_t b) {
  return Format(fmt, a, b);
}

void Router::Connect(Element* from, int out_port, Element* to, int in_port) {
  RB_CHECK(!initialized_);
  RB_CHECK(from != nullptr && to != nullptr);
  RB_CHECK_MSG(out_port >= 0 && out_port < from->n_outputs(), "output port out of range");
  RB_CHECK_MSG(in_port >= 0 && in_port < to->n_inputs(), "input port out of range");
  auto& out_ref = from->outputs_[static_cast<size_t>(out_port)];
  auto& in_ref = to->inputs_[static_cast<size_t>(in_port)];
  RB_CHECK_MSG(!out_ref.connected(), "output port already wired");
  out_ref = {to, in_port};
  // Push inputs may fan in (multiple upstream elements pushing into the
  // same port, as in Click). The input back-reference records the first
  // upstream only; it is what Pull() follows, so pull paths must stay
  // single-wired by construction (Queue -> ToDevice chains are).
  if (!in_ref.connected()) {
    in_ref = {from, out_port};
  }
}

bool Router::CanConnect(Element* from, int out_port, Element* to, int in_port) const {
  if (initialized_ || from == nullptr || to == nullptr) {
    return false;
  }
  if (out_port < 0 || out_port >= from->n_outputs() || in_port < 0 ||
      in_port >= to->n_inputs()) {
    return false;
  }
  return !from->outputs_[static_cast<size_t>(out_port)].connected();
}

void Router::Chain(std::initializer_list<Element*> elements) {
  Element* prev = nullptr;
  for (Element* e : elements) {
    if (prev != nullptr) {
      Connect(prev, 0, e, 0);
    }
    prev = e;
  }
}

void Router::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                           const std::string& prefix) {
  if (!telemetry::Enabled()) {
    return;
  }
  tele_registry_ = registry;
  tele_tracer_ = tracer;
  tele_prefix_ = prefix;
  for (auto& e : elements_) {
    e->BindTelemetry(registry, tracer, prefix);
  }
  for (auto& t : tasks_) {
    BindTask_(t.get());
  }
}

void Router::AddHandlers(telemetry::HandlerRegistry* handlers) {
  RB_CHECK(handlers != nullptr);
  for (auto& e : elements_) {
    e->AddHandlers(handlers);
  }
  handlers->AddRead("router.elements", [this] {
    std::string out;
    for (const auto& e : elements_) {
      out += Format("%s %s\n", e->name().c_str(), e->class_name());
    }
    return out;
  });
  handlers->AddRead("router.tasks", [this] {
    std::string out;
    for (const auto& t : tasks_) {
      out += Format("%s home_core=%d progress=%llu\n",
                    t->element() != nullptr ? t->element()->name().c_str() : "-", t->home_core(),
                    static_cast<unsigned long long>(t->progress()));
    }
    return out;
  });
}

void Router::BindTask_(Task* task) {
  if (tele_registry_ == nullptr || task->element() == nullptr) {
    return;
  }
  const std::string base = tele_prefix_ + "task/" + task->element()->name();
  task->BindTelemetry(tele_registry_->GetCounter(base + "/runs"),
                      tele_registry_->GetCounter(base + "/work"),
                      tele_registry_->GetHistogram(
                          base + "/burst",
                          telemetry::HistogramOptions{0.0, static_cast<double>(PacketBatch::kCapacity),
                                                      64}));
}

void Router::RegisterTask(std::unique_ptr<Task> task) {
  BindTask_(task.get());
  tasks_.push_back(std::move(task));
}

std::vector<Element*> Router::DownstreamBlockers(Element* root) const {
  RB_CHECK(root != nullptr);
  std::vector<Element*> boundaries;
  std::vector<Element*> frontier{root};
  std::vector<Element*> visited;
  while (!frontier.empty()) {
    Element* e = frontier.back();
    frontier.pop_back();
    if (std::find(visited.begin(), visited.end(), e) != visited.end()) {
      continue;
    }
    visited.push_back(e);
    for (const auto& ref : e->outputs_) {
      if (!ref.connected()) {
        continue;
      }
      Element* next = ref.element;
      if (next->backpressure_boundary()) {
        if (std::find(boundaries.begin(), boundaries.end(), next) == boundaries.end()) {
          boundaries.push_back(next);
        }
        continue;  // beyond the boundary is the pull side
      }
      frontier.push_back(next);
    }
  }
  return boundaries;
}

int Router::CompilePrograms() {
  RB_CHECK_MSG(!initialized_, "CompilePrograms must precede Initialize");

  // Compile every candidate once; fan-in counts decide which elements may
  // be absorbed mid-chain (a continuation must have exactly one upstream,
  // or other pushers would bypass the merged program).
  std::map<Element*, program::MatchProgram> programs;
  std::map<Element*, int> fan_in;
  std::vector<Element*> originals;
  for (auto& e : elements_) {
    originals.push_back(e.get());
    for (const auto& ref : e->outputs_) {
      if (ref.connected()) {
        fan_in[ref.element]++;
      }
    }
  }
  for (Element* e : originals) {
    program::MatchProgram prog;
    if (e->n_inputs() == 1 && e->CompileMatch(&prog)) {
      std::string err;
      RB_CHECK_MSG(prog.Validate(&err), "element produced an invalid match program");
      programs.emplace(e, std::move(prog));
    }
  }

  // continuation[e] = the output port whose target extends e's chain: the
  // first output leading to a compilable, single-input, fan-in-1 element.
  // Other outputs become exit lanes of the collapsed element.
  std::map<Element*, int> continuation;
  std::set<Element*> is_continuation;
  for (auto& [e, prog] : programs) {
    for (int o = 0; o < e->n_outputs(); ++o) {
      const auto& ref = e->outputs_[static_cast<size_t>(o)];
      if (ref.connected() && ref.element != e && programs.count(ref.element) != 0 &&
          ref.port == 0 && fan_in[ref.element] == 1 &&
          is_continuation.count(ref.element) == 0) {
        continuation[e] = o;
        is_continuation.insert(ref.element);
        break;
      }
    }
  }

  int collapsed = 0;
  for (Element* head : originals) {
    if (programs.count(head) == 0 || is_continuation.count(head) != 0) {
      continue;
    }
    // Follow continuation links to the full chain.
    std::vector<Element*> chain{head};
    std::vector<int> cont_out;
    while (continuation.count(chain.back()) != 0) {
      int o = continuation[chain.back()];
      cont_out.push_back(o);
      chain.push_back(chain.back()->outputs_[static_cast<size_t>(o)].element);
    }

    // Exit lanes in the interpreted chain's depth-first output order: each
    // element emits OutputBatch(0..n-1) in order, recursing through the
    // continuation edge, so pre-order traversal reproduces the exact
    // per-sink packet sequence.
    std::vector<std::pair<Element*, int>> exits;
    std::map<Element*, std::vector<int16_t>> lane_of;  // per element: output -> lane
    auto visit = [&](auto&& self, size_t i) -> void {
      Element* e = chain[i];
      auto& lanes = lane_of[e];
      lanes.assign(static_cast<size_t>(e->n_outputs()), 0);
      for (int o = 0; o < e->n_outputs(); ++o) {
        if (i < cont_out.size() && o == cont_out[i]) {
          self(self, i + 1);
          continue;
        }
        lanes[static_cast<size_t>(o)] =
            program::MatchProgram::Terminal(static_cast<int>(exits.size()));
        exits.emplace_back(e, o);
      }
    };
    visit(visit, 0);

    // Merge programs front to back. Entry offsets are prefix sums of the
    // per-element sizes, so a continuation terminal can be rewritten into
    // a forward jump to the next element's entry before it is appended.
    std::vector<int> base(chain.size());
    for (size_t i = 1; i < chain.size(); ++i) {
      base[i] = base[i - 1] + static_cast<int>(programs[chain[i - 1]].size());
    }
    program::MatchProgram merged;
    merged.set_n_outputs(static_cast<int>(exits.size()));
    std::string collapsed_names;
    for (size_t i = 0; i < chain.size(); ++i) {
      Element* e = chain[i];
      std::vector<int16_t> map_terminal = lane_of[e];
      if (i < cont_out.size()) {
        map_terminal[static_cast<size_t>(cont_out[i])] = static_cast<int16_t>(base[i + 1]);
      }
      merged.AppendRebased(programs[e], map_terminal);
      if (!collapsed_names.empty()) {
        collapsed_names += "+";
      }
      collapsed_names += e->name();
    }
    std::string err;
    RB_CHECK_MSG(merged.Validate(&err), "merged match program invalid");
    // Superinstruction peephole: a chain that is (or ends in) a plain
    // CheckIPHeader runs as one fused dispatch instead of three.
    merged.Fuse();

    auto* cc =
        Add<CompiledClassifier>(std::move(merged), static_cast<int>(exits.size()), collapsed_names);

    // Rewire: every push edge into the chain head now lands on the
    // compiled element, and each exit lane adopts the original exit edge.
    // Scan all elements, not just the originals: an earlier collapse may
    // have left a CompiledClassifier exit lane pointing at this head.
    for (auto& owned : elements_) {
      Element* e = owned.get();
      for (auto& ref : e->outputs_) {
        if (ref.element == head && ref.port == 0) {
          ref = {cc, 0};
        }
      }
    }
    cc->inputs_[0] = head->inputs_[0];
    for (size_t lane = 0; lane < exits.size(); ++lane) {
      auto [from, port] = exits[lane];
      const auto target = from->outputs_[static_cast<size_t>(port)];
      cc->outputs_[lane] = target;
      if (target.connected() &&
          target.element->inputs_[static_cast<size_t>(target.port)].element == from) {
        target.element->inputs_[static_cast<size_t>(target.port)] = {cc,
                                                                     static_cast<int>(lane)};
      }
    }
    // Detach the absorbed originals: they stay owned (handlers keep
    // working, counters read 0) but carry no graph edges.
    for (Element* e : chain) {
      for (auto& ref : e->outputs_) {
        ref = {};
      }
      for (auto& ref : e->inputs_) {
        ref = {};
      }
    }
    collapsed++;
  }
  return collapsed;
}

void Router::Initialize() {
  RB_CHECK_MSG(!initialized_, "Router::Initialize called twice");
  initialized_ = true;
  for (auto& e : elements_) {
    e->Initialize(this);
  }
}

size_t Router::RunTasksOnce() {
  RB_CHECK_MSG(initialized_, "Router not initialized");
  size_t moved = 0;
  for (auto& t : tasks_) {
    moved += t->RunOnce();
  }
  return moved;
}

size_t Router::RunUntilIdle(size_t max_sweeps) {
  size_t total = 0;
  for (size_t i = 0; i < max_sweeps; ++i) {
    size_t moved = RunTasksOnce();
    total += moved;
    if (moved == 0) {
      break;
    }
  }
  return total;
}

}  // namespace rb
