#include "click/router.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace rb {

std::string Router::Format_(const char* fmt, const char* a, size_t b) {
  return Format(fmt, a, b);
}

void Router::Connect(Element* from, int out_port, Element* to, int in_port) {
  RB_CHECK(!initialized_);
  RB_CHECK(from != nullptr && to != nullptr);
  RB_CHECK_MSG(out_port >= 0 && out_port < from->n_outputs(), "output port out of range");
  RB_CHECK_MSG(in_port >= 0 && in_port < to->n_inputs(), "input port out of range");
  auto& out_ref = from->outputs_[static_cast<size_t>(out_port)];
  auto& in_ref = to->inputs_[static_cast<size_t>(in_port)];
  RB_CHECK_MSG(!out_ref.connected(), "output port already wired");
  out_ref = {to, in_port};
  // Push inputs may fan in (multiple upstream elements pushing into the
  // same port, as in Click). The input back-reference records the first
  // upstream only; it is what Pull() follows, so pull paths must stay
  // single-wired by construction (Queue -> ToDevice chains are).
  if (!in_ref.connected()) {
    in_ref = {from, out_port};
  }
}

bool Router::CanConnect(Element* from, int out_port, Element* to, int in_port) const {
  if (initialized_ || from == nullptr || to == nullptr) {
    return false;
  }
  if (out_port < 0 || out_port >= from->n_outputs() || in_port < 0 ||
      in_port >= to->n_inputs()) {
    return false;
  }
  return !from->outputs_[static_cast<size_t>(out_port)].connected();
}

void Router::Chain(std::initializer_list<Element*> elements) {
  Element* prev = nullptr;
  for (Element* e : elements) {
    if (prev != nullptr) {
      Connect(prev, 0, e, 0);
    }
    prev = e;
  }
}

void Router::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                           const std::string& prefix) {
  if (!telemetry::Enabled()) {
    return;
  }
  tele_registry_ = registry;
  tele_tracer_ = tracer;
  tele_prefix_ = prefix;
  for (auto& e : elements_) {
    e->BindTelemetry(registry, tracer, prefix);
  }
  for (auto& t : tasks_) {
    BindTask_(t.get());
  }
}

void Router::AddHandlers(telemetry::HandlerRegistry* handlers) {
  RB_CHECK(handlers != nullptr);
  for (auto& e : elements_) {
    e->AddHandlers(handlers);
  }
  handlers->AddRead("router.elements", [this] {
    std::string out;
    for (const auto& e : elements_) {
      out += Format("%s %s\n", e->name().c_str(), e->class_name());
    }
    return out;
  });
  handlers->AddRead("router.tasks", [this] {
    std::string out;
    for (const auto& t : tasks_) {
      out += Format("%s home_core=%d progress=%llu\n",
                    t->element() != nullptr ? t->element()->name().c_str() : "-", t->home_core(),
                    static_cast<unsigned long long>(t->progress()));
    }
    return out;
  });
}

void Router::BindTask_(Task* task) {
  if (tele_registry_ == nullptr || task->element() == nullptr) {
    return;
  }
  const std::string base = tele_prefix_ + "task/" + task->element()->name();
  task->BindTelemetry(tele_registry_->GetCounter(base + "/runs"),
                      tele_registry_->GetCounter(base + "/work"),
                      tele_registry_->GetHistogram(
                          base + "/burst",
                          telemetry::HistogramOptions{0.0, static_cast<double>(PacketBatch::kCapacity),
                                                      64}));
}

void Router::RegisterTask(std::unique_ptr<Task> task) {
  BindTask_(task.get());
  tasks_.push_back(std::move(task));
}

std::vector<Element*> Router::DownstreamBlockers(Element* root) const {
  RB_CHECK(root != nullptr);
  std::vector<Element*> boundaries;
  std::vector<Element*> frontier{root};
  std::vector<Element*> visited;
  while (!frontier.empty()) {
    Element* e = frontier.back();
    frontier.pop_back();
    if (std::find(visited.begin(), visited.end(), e) != visited.end()) {
      continue;
    }
    visited.push_back(e);
    for (const auto& ref : e->outputs_) {
      if (!ref.connected()) {
        continue;
      }
      Element* next = ref.element;
      if (next->backpressure_boundary()) {
        if (std::find(boundaries.begin(), boundaries.end(), next) == boundaries.end()) {
          boundaries.push_back(next);
        }
        continue;  // beyond the boundary is the pull side
      }
      frontier.push_back(next);
    }
  }
  return boundaries;
}

void Router::Initialize() {
  RB_CHECK_MSG(!initialized_, "Router::Initialize called twice");
  initialized_ = true;
  for (auto& e : elements_) {
    e->Initialize(this);
  }
}

size_t Router::RunTasksOnce() {
  RB_CHECK_MSG(initialized_, "Router not initialized");
  size_t moved = 0;
  for (auto& t : tasks_) {
    moved += t->RunOnce();
  }
  return moved;
}

size_t Router::RunUntilIdle(size_t max_sweeps) {
  size_t total = 0;
  for (size_t i = 0; i < max_sweeps; ++i) {
    size_t moved = RunTasksOnce();
    total += moved;
    if (moved == 0) {
      break;
    }
  }
  return total;
}

}  // namespace rb
