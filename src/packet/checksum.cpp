#include "packet/checksum.hpp"

namespace rb {

uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t sum) {
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint16_t Checksum(const uint8_t* data, size_t len) {
  return ChecksumFinish(ChecksumPartial(data, len));
}

uint16_t ChecksumUpdate16(uint16_t old_checksum, uint16_t old_field, uint16_t new_field) {
  // RFC 1624: HC' = ~(~HC + ~m + m'), computed in one's complement.
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  sum += static_cast<uint16_t>(~old_field);
  sum += new_field;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint16_t ChecksumUpdate32(uint16_t old_checksum, uint32_t old_field, uint32_t new_field) {
  // Same RFC 1624 arithmetic with both halves of the 32-bit field summed
  // before the fold; one's-complement addition is associative under
  // folding, so this matches the two-step 16-bit chain exactly.
  uint32_t sum = static_cast<uint16_t>(~old_checksum);
  sum += static_cast<uint16_t>(~(old_field >> 16));
  sum += static_cast<uint16_t>(new_field >> 16);
  sum += static_cast<uint16_t>(~old_field);
  sum += static_cast<uint16_t>(new_field);
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

}  // namespace rb
