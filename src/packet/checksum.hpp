// RFC 1071 Internet checksum.
#ifndef RB_PACKET_CHECKSUM_HPP_
#define RB_PACKET_CHECKSUM_HPP_

#include <cstddef>
#include <cstdint>

namespace rb {

// One's-complement sum of `len` bytes (not folded, not inverted). Useful
// for incremental computation over several regions.
uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t sum = 0);

// Folds a partial sum into 16 bits and inverts: the final checksum value.
uint16_t ChecksumFinish(uint32_t sum);

// Convenience: full checksum of a region.
uint16_t Checksum(const uint8_t* data, size_t len);

// Incremental checksum update per RFC 1624 (HC' = ~(~HC + ~m + m')) for a
// 16-bit field change; used by DecIPTTL to avoid recomputing the header.
uint16_t ChecksumUpdate16(uint16_t old_checksum, uint16_t old_field, uint16_t new_field);

// RFC 1624 update for a 32-bit field change (an IPv4 address), folding
// both 16-bit halves into one pass. Bit-identical to chaining
// ChecksumUpdate16 over the high and low halves — the single audited
// patch helper shared by the injector's template fill and the NAT
// rewrite path. Note the one's-complement zero ambiguity: patching a
// field from 0 to 0 is not an identity (0x0000 vs 0xffff residue), so
// callers patching optional fields guard on old != new.
uint16_t ChecksumUpdate32(uint16_t old_checksum, uint32_t old_field, uint32_t new_field);

}  // namespace rb

#endif  // RB_PACKET_CHECKSUM_HPP_
