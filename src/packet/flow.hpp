// Flow identification: the classic 5-tuple and the RSS-style hash that
// multi-queue NICs use to steer packets to receive queues (§4.2). The hash
// must be (a) deterministic so the same flow always lands on the same
// queue — a prerequisite for the flowlet reordering-avoidance scheme — and
// (b) well mixed so queues load-balance.
#ifndef RB_PACKET_FLOW_HPP_
#define RB_PACKET_FLOW_HPP_

#include <cstdint>
#include <functional>

#include "packet/packet.hpp"

namespace rb {

struct FlowKey {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  bool operator==(const FlowKey&) const = default;
};

// 64-bit mix of the 5-tuple (SplitMix-style finalizer). Stable across runs.
uint64_t FlowHash64(const FlowKey& key);

// 32-bit variant for the Packet::flow_hash annotation.
inline uint32_t FlowHash32(const FlowKey& key) {
  uint64_t h = FlowHash64(key);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

// Extracts the 5-tuple from an Ethernet+IPv4(+TCP/UDP) frame. Returns false
// if the frame is not parseable (non-IPv4, truncated). Ports are zero for
// protocols other than TCP/UDP.
bool ExtractFlowKey(const Packet& p, FlowKey* key);

struct FlowKeyHasher {
  size_t operator()(const FlowKey& key) const { return static_cast<size_t>(FlowHash64(key)); }
};

}  // namespace rb

#endif  // RB_PACKET_FLOW_HPP_
