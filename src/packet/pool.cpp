#include "packet/pool.hpp"

#include "common/log.hpp"

namespace rb {

PacketPool::PacketPool(size_t capacity)
    : capacity_(capacity), storage_(std::make_unique<Packet[]>(capacity)) {
  free_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    storage_[i].origin_pool_ = this;
    storage_[i].in_pool_ = true;
    free_.push_back(&storage_[i]);
  }
}

PacketPool::~PacketPool() {
  if (free_.size() != capacity_) {
    RB_LOG_WARN("PacketPool destroyed with %zu packets still in use", in_use());
  }
}

Packet* PacketPool::Alloc() {
  if (free_.empty()) {
    alloc_failures_++;
    return nullptr;
  }
  Packet* p = free_.back();
  free_.pop_back();
  p->in_pool_ = false;
  return p;
}

void PacketPool::Free(Packet* p) {
  RB_CHECK_MSG(p != nullptr, "freeing null packet");
  RB_CHECK_MSG(p->origin_pool_ == this, "packet returned to the wrong pool");
  // A second Free() would push the packet onto the freelist twice, letting
  // two later Alloc() calls hand out the same buffer.
  RB_CHECK_MSG(!p->in_pool_, "double free: packet is already in the pool");
  p->ResetMetadata();
  p->in_pool_ = true;
  free_.push_back(p);
}

void PacketPool::Release(Packet* p) {
  RB_CHECK(p != nullptr && p->origin_pool() != nullptr);
  p->origin_pool()->Free(p);
}

}  // namespace rb
