#include "packet/pool.hpp"

#include "common/log.hpp"
#include "common/prefetch.hpp"

namespace rb {

PacketPool::PacketPool(size_t capacity)
    : capacity_(capacity), storage_(std::make_unique<Packet[]>(capacity)) {
  free_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    storage_[i].origin_pool_ = this;
    storage_[i].in_pool_ = true;
    free_.push_back(&storage_[i]);
  }
}

PacketPool::~PacketPool() {
  if (free_.size() != capacity_) {
    RB_LOG_WARN("PacketPool destroyed with %zu packets still in use", in_use());
  }
}

Packet* PacketPool::Alloc() {
  if (free_.empty()) {
    alloc_failures_++;
    return nullptr;
  }
  Packet* p = free_.back();
  free_.pop_back();
  p->in_pool_ = false;
  return p;
}

size_t PacketPool::AllocBulk(Packet** out, size_t n) {
  size_t got = n < free_.size() ? n : free_.size();
  // Carve from the freelist tail in one splice instead of n pop_backs.
  size_t base = free_.size() - got;
  for (size_t i = 0; i < got; ++i) {
    if (i + 4 < got) {
      // Clearing in_pool_ is the first touch of a long-evicted metadata
      // line; ask for ownership a few packets ahead of the store.
      PrefetchForWrite(free_[base + i + 4]);
    }
    Packet* p = free_[base + i];
    p->in_pool_ = false;
    out[i] = p;
  }
  free_.resize(base);
  alloc_failures_ += n - got;
  return got;
}

void PacketPool::Free(Packet* p) {
  RB_CHECK_MSG(p != nullptr, "freeing null packet");
  RB_CHECK_MSG(p->origin_pool_ == this, "packet returned to the wrong pool");
  // A second Free() would push the packet onto the freelist twice, letting
  // two later Alloc() calls hand out the same buffer.
  RB_CHECK_MSG(!p->in_pool_, "double free: packet is already in the pool");
  p->ResetMetadata();
  p->in_pool_ = true;
  free_.push_back(p);
}

void PacketPool::FreeBulk(Packet* const* pkts, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      // Free() writes the packet's metadata line (ResetMetadata + the
      // in_pool_ flag); by drain time that line has long been evicted, so
      // hide the read-for-ownership behind the current packet's free.
      PrefetchForWrite(pkts[i + 1]);
    }
    Free(pkts[i]);
  }
}

size_t PacketPool::SlotIndex(const Packet* p) const {
  RB_CHECK_MSG(p != nullptr && p->origin_pool() == this,
               "slot index asked for a foreign packet");
  return static_cast<size_t>(p - storage_.get());
}

void PacketPool::Release(Packet* p) {
  RB_CHECK(p != nullptr && p->origin_pool() != nullptr);
  p->origin_pool()->Free(p);
}

}  // namespace rb
