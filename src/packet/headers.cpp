#include "packet/headers.hpp"

#include "common/strings.hpp"
#include "packet/checksum.hpp"

namespace rb {

MacAddress EthernetView::dst() const {
  MacAddress m;
  for (int i = 0; i < 6; ++i) {
    m[static_cast<size_t>(i)] = base[i];
  }
  return m;
}

MacAddress EthernetView::src() const {
  MacAddress m;
  for (int i = 0; i < 6; ++i) {
    m[static_cast<size_t>(i)] = base[6 + i];
  }
  return m;
}

void EthernetView::set_dst(const MacAddress& m) {
  for (size_t i = 0; i < 6; ++i) {
    base[i] = m[i];
  }
}

void EthernetView::set_src(const MacAddress& m) {
  for (size_t i = 0; i < 6; ++i) {
    base[6 + i] = m[i];
  }
}

MacAddress MacForNode(uint16_t node_id) {
  // 02:rb:00:00:hi:lo -- locally administered, unicast.
  return MacAddress{0x02, 0x4b, 0x00, 0x00, static_cast<uint8_t>(node_id >> 8),
                    static_cast<uint8_t>(node_id & 0xff)};
}

uint16_t NodeFromMac(const MacAddress& mac) {
  if (mac[0] != 0x02 || mac[1] != 0x4b || mac[2] != 0x00 || mac[3] != 0x00) {
    return 0xffff;
  }
  return static_cast<uint16_t>((mac[4] << 8) | mac[5]);
}

std::string MacToString(const MacAddress& mac) {
  return Format("%02x:%02x:%02x:%02x:%02x:%02x", mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]);
}

void Ipv4View::UpdateChecksum() {
  set_checksum(0);
  set_checksum(Checksum(base, header_length()));
}

bool Ipv4View::ChecksumOk() const {
  return Checksum(base, header_length()) == 0;
}

void Ipv4View::WriteDefault(uint8_t* base, uint32_t src, uint32_t dst, uint8_t protocol,
                            uint16_t total_length) {
  Ipv4View ip{base};
  ip.set_version_ihl(4, 5);
  ip.set_tos(0);
  ip.set_total_length(total_length);
  ip.set_identification(0);
  ip.set_flags_fragment(0x4000);  // DF
  ip.set_ttl(64);
  ip.set_protocol(protocol);
  ip.set_checksum(0);
  ip.set_src(src);
  ip.set_dst(dst);
  ip.UpdateChecksum();
}

}  // namespace rb
