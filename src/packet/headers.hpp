// Wire-format header readers/writers for Ethernet, IPv4, UDP and TCP.
//
// Headers are accessed through explicit byte-order helpers rather than
// overlaying packed structs: overlaying is UB-prone (alignment, strict
// aliasing) and the explicit form documents the offsets. All multi-byte
// fields are big-endian on the wire; accessor APIs use host-order values.
#ifndef RB_PACKET_HEADERS_HPP_
#define RB_PACKET_HEADERS_HPP_

#include <array>
#include <cstdint>
#include <string>

namespace rb {

// --- byte order ---
inline uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}
inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}
inline void StoreBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

// --- Ethernet ---
using MacAddress = std::array<uint8_t, 6>;

struct EthernetView {
  static constexpr uint32_t kSize = 14;
  static constexpr uint16_t kTypeIpv4 = 0x0800;
  static constexpr uint16_t kTypeArp = 0x0806;

  uint8_t* base;

  MacAddress dst() const;
  MacAddress src() const;
  uint16_t ether_type() const { return LoadBe16(base + 12); }

  void set_dst(const MacAddress& m);
  void set_src(const MacAddress& m);
  void set_ether_type(uint16_t t) { StoreBe16(base + 12, t); }
};

// Builds a MAC address that encodes a cluster node id in the low two bytes
// (the paper's §6.1 output-node-in-MAC trick); the top byte is set to the
// locally-administered unicast prefix 0x02.
MacAddress MacForNode(uint16_t node_id);
// Inverse of MacForNode; returns Packet::kNoNode-style 0xffff if the MAC
// does not carry the encoding prefix.
uint16_t NodeFromMac(const MacAddress& mac);

std::string MacToString(const MacAddress& mac);

// --- IPv4 ---
struct Ipv4View {
  static constexpr uint32_t kMinSize = 20;
  static constexpr uint8_t kProtoIcmp = 1;
  static constexpr uint8_t kProtoTcp = 6;
  static constexpr uint8_t kProtoUdp = 17;
  static constexpr uint8_t kProtoEsp = 50;

  uint8_t* base;

  uint8_t version() const { return base[0] >> 4; }
  uint8_t ihl() const { return base[0] & 0x0f; }               // in 32-bit words
  uint32_t header_length() const { return ihl() * 4u; }
  uint8_t tos() const { return base[1]; }
  uint16_t total_length() const { return LoadBe16(base + 2); }
  uint16_t identification() const { return LoadBe16(base + 4); }
  uint16_t flags_fragment() const { return LoadBe16(base + 6); }
  uint8_t ttl() const { return base[8]; }
  uint8_t protocol() const { return base[9]; }
  uint16_t checksum() const { return LoadBe16(base + 10); }
  uint32_t src() const { return LoadBe32(base + 12); }
  uint32_t dst() const { return LoadBe32(base + 16); }

  void set_version_ihl(uint8_t version, uint8_t ihl) {
    base[0] = static_cast<uint8_t>((version << 4) | (ihl & 0x0f));
  }
  void set_tos(uint8_t v) { base[1] = v; }
  void set_total_length(uint16_t v) { StoreBe16(base + 2, v); }
  void set_identification(uint16_t v) { StoreBe16(base + 4, v); }
  void set_flags_fragment(uint16_t v) { StoreBe16(base + 6, v); }
  void set_ttl(uint8_t v) { base[8] = v; }
  void set_protocol(uint8_t v) { base[9] = v; }
  void set_checksum(uint16_t v) { StoreBe16(base + 10, v); }
  void set_src(uint32_t v) { StoreBe32(base + 12, v); }
  void set_dst(uint32_t v) { StoreBe32(base + 16, v); }

  // Recomputes and stores the header checksum.
  void UpdateChecksum();
  // True if the stored checksum matches the header contents.
  bool ChecksumOk() const;

  // Writes a fresh 20-byte header with sane defaults (version 4, ihl 5,
  // ttl 64) and the given addressing; checksum is computed.
  static void WriteDefault(uint8_t* base, uint32_t src, uint32_t dst, uint8_t protocol,
                           uint16_t total_length);
};

// --- UDP ---
struct UdpView {
  static constexpr uint32_t kSize = 8;
  uint8_t* base;

  uint16_t src_port() const { return LoadBe16(base); }
  uint16_t dst_port() const { return LoadBe16(base + 2); }
  uint16_t length() const { return LoadBe16(base + 4); }
  uint16_t checksum() const { return LoadBe16(base + 6); }

  void set_src_port(uint16_t v) { StoreBe16(base, v); }
  void set_dst_port(uint16_t v) { StoreBe16(base + 2, v); }
  void set_length(uint16_t v) { StoreBe16(base + 4, v); }
  void set_checksum(uint16_t v) { StoreBe16(base + 6, v); }
};

// --- TCP (fields we need; options not modeled) ---
struct TcpView {
  static constexpr uint32_t kMinSize = 20;
  uint8_t* base;

  uint16_t src_port() const { return LoadBe16(base); }
  uint16_t dst_port() const { return LoadBe16(base + 2); }
  uint32_t seq() const { return LoadBe32(base + 4); }
  uint32_t ack() const { return LoadBe32(base + 8); }

  void set_src_port(uint16_t v) { StoreBe16(base, v); }
  void set_dst_port(uint16_t v) { StoreBe16(base + 2, v); }
  void set_seq(uint32_t v) { StoreBe32(base + 4, v); }
  void set_ack(uint32_t v) { StoreBe32(base + 8, v); }
};

}  // namespace rb

#endif  // RB_PACKET_HEADERS_HPP_
