// Packet representation.
//
// A Packet owns a contiguous byte buffer (up to kMaxCapacity) plus the
// metadata ("annotations" in Click terminology) that the RouteBricks data
// path needs: arrival timestamp, input port, RSS flow hash, the VLB phase
// tag, the encoded output node, and a per-flow sequence number used by the
// reordering detector. Packets are pool-allocated (see pool.hpp) and moved
// by raw pointer through rings and elements, exactly as in a real driver;
// ownership is explicit: whoever drops a packet returns it to its pool.
//
// The buffer keeps headroom at the front so that encapsulating elements
// (EtherEncap, ESP) can prepend headers without copying the payload.
#ifndef RB_PACKET_PACKET_HPP_
#define RB_PACKET_PACKET_HPP_

#include <cstdint>
#include <cstring>

#include "common/time.hpp"

namespace rb {

class PacketPool;

// VLB routing phase of a packet inside the cluster.
enum class VlbPhase : uint8_t {
  kNone = 0,    // not yet classified / external traffic
  kPhase1 = 1,  // input node -> intermediate node
  kPhase2 = 2,  // intermediate node -> output node
  kDirect = 3,  // directly routed (Direct VLB shortcut)
};

class Packet {
 public:
  static constexpr uint32_t kMaxCapacity = 2048;
  static constexpr uint32_t kDefaultHeadroom = 128;

  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  // --- buffer ---
  uint8_t* data() { return buf_ + offset_; }
  const uint8_t* data() const { return buf_ + offset_; }
  uint32_t length() const { return length_; }
  uint32_t headroom() const { return offset_; }
  uint32_t tailroom() const { return kMaxCapacity - offset_ - length_; }

  // Copies `len` bytes into the buffer (after default headroom) and sets
  // the length. len must fit.
  void SetPayload(const uint8_t* src, uint32_t len);

  // Sets the length without writing bytes (payload contents are whatever
  // was in the buffer); used by generators that only care about sizes.
  void SetLength(uint32_t len);

  // Grows the packet by `n` bytes at the front (prepending a header).
  // Consumes headroom; RB_CHECKs if none is left. Returns the new front.
  uint8_t* Push(uint32_t n);
  // Removes `n` bytes from the front.
  void Pull(uint32_t n);
  // Appends `n` bytes at the tail (uninitialized); returns the first one.
  uint8_t* Put(uint32_t n);
  // Truncates `n` bytes from the tail.
  void Trim(uint32_t n);

  // --- annotations ---
  SimTime arrival_time() const { return arrival_time_; }
  void set_arrival_time(SimTime t) { arrival_time_ = t; }

  uint16_t input_port() const { return input_port_; }
  void set_input_port(uint16_t p) { input_port_ = p; }

  uint32_t flow_hash() const { return flow_hash_; }
  void set_flow_hash(uint32_t h) { flow_hash_ = h; }

  VlbPhase vlb_phase() const { return vlb_phase_; }
  void set_vlb_phase(VlbPhase p) { vlb_phase_ = p; }

  // Output node of the cluster, encoded at the input node (the paper's
  // MAC-address trick, §6.1). kNoNode when unset.
  static constexpr uint16_t kNoNode = 0xffff;
  uint16_t output_node() const { return output_node_; }
  void set_output_node(uint16_t n) { output_node_ = n; }

  uint64_t flow_id() const { return flow_id_; }
  void set_flow_id(uint64_t id) { flow_id_ = id; }
  uint64_t flow_seq() const { return flow_seq_; }
  void set_flow_seq(uint64_t s) { flow_seq_ = s; }

  // Color annotation for Paint/CheckPaint-style elements.
  uint8_t paint() const { return paint_; }
  void set_paint(uint8_t c) { paint_ = c; }

  // Telemetry trace handle (telemetry::PathTracer); 0 = not sampled.
  uint64_t trace_handle() const { return trace_handle_; }
  void set_trace_handle(uint64_t h) { trace_handle_ = h; }

  // Queue-enqueue timestamp (seconds; steady clock in the threaded graph,
  // SimTime in the DES) stamped by AQM-enabled queues so the dequeue side
  // can measure sojourn time (CoDel). 0 = never enqueued.
  double enqueue_time() const { return enqueue_time_; }
  void set_enqueue_time(double t) { enqueue_time_ = t; }

  // Frame bytes as counted on the wire per the paper's convention
  // (no preamble/IFG accounting).
  uint32_t wire_bytes() const { return length_; }

  // Clears annotations and resets headroom; called by the pool on release.
  void ResetMetadata();

  PacketPool* origin_pool() const { return origin_pool_; }

 private:
  friend class PacketPool;

  uint8_t buf_[kMaxCapacity];
  uint32_t length_ = 0;
  uint32_t offset_ = kDefaultHeadroom;

  SimTime arrival_time_ = 0;
  uint16_t input_port_ = 0;
  uint32_t flow_hash_ = 0;
  VlbPhase vlb_phase_ = VlbPhase::kNone;
  uint16_t output_node_ = kNoNode;
  uint64_t flow_id_ = 0;
  uint64_t flow_seq_ = 0;
  uint8_t paint_ = 0;
  uint64_t trace_handle_ = 0;
  double enqueue_time_ = 0;
  PacketPool* origin_pool_ = nullptr;
  // Maintained by PacketPool to reject double-frees (two owners aliasing
  // one buffer).
  bool in_pool_ = false;
};

}  // namespace rb

#endif  // RB_PACKET_PACKET_HPP_
