// Packet representation.
//
// A Packet owns a contiguous byte buffer (up to kMaxCapacity) plus the
// metadata ("annotations" in Click terminology) that the RouteBricks data
// path needs: arrival timestamp, input port, RSS flow hash, the VLB phase
// tag, the encoded output node, and a per-flow sequence number used by the
// reordering detector. Packets are pool-allocated (see pool.hpp) and moved
// by raw pointer through rings and elements, exactly as in a real driver;
// ownership is explicit: whoever drops a packet returns it to its pool.
//
// The buffer keeps headroom at the front so that encapsulating elements
// (EtherEncap, ESP) can prepend headers without copying the payload.
//
// Layout (cache-honest, pinned by static_asserts below): the hot
// annotations — length/offset, the flow fields, the VLB phase, the pool
// back-pointer — occupy the *first* cache line of the object, so touching
// a packet's metadata costs one line, not one line 2 KiB past the object
// start. The buffer itself is cache-line aligned, and the object is padded
// so the pool stride is an odd number of cache lines: consecutive packets
// in a pool therefore map their data() bytes to different L1/L2 sets
// instead of aliasing on a power-of-two stride.
#ifndef RB_PACKET_PACKET_HPP_
#define RB_PACKET_PACKET_HPP_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/prefetch.hpp"
#include "common/time.hpp"

namespace rb {

class PacketPool;

// VLB routing phase of a packet inside the cluster.
enum class VlbPhase : uint8_t {
  kNone = 0,    // not yet classified / external traffic
  kPhase1 = 1,  // input node -> intermediate node
  kPhase2 = 2,  // intermediate node -> output node
  kDirect = 3,  // directly routed (Direct VLB shortcut)
};

class Packet {
 public:
  static constexpr uint32_t kMaxCapacity = 2048;
  static constexpr uint32_t kDefaultHeadroom = 128;

  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  // --- buffer ---
  uint8_t* data() { return buf_ + offset_; }
  const uint8_t* data() const { return buf_ + offset_; }
  uint32_t length() const { return length_; }
  uint32_t headroom() const { return offset_; }
  uint32_t tailroom() const { return kMaxCapacity - offset_ - length_; }

  // Copies `len` bytes into the buffer (after default headroom) and sets
  // the length. len must fit.
  void SetPayload(const uint8_t* src, uint32_t len);

  // Sets the length without writing bytes (payload contents are whatever
  // was in the buffer); used by generators that only care about sizes.
  void SetLength(uint32_t len);

  // Grows the packet by `n` bytes at the front (prepending a header).
  // Consumes headroom; RB_CHECKs if none is left. Returns the new front.
  uint8_t* Push(uint32_t n);
  // Removes `n` bytes from the front.
  void Pull(uint32_t n);
  // Appends `n` bytes at the tail (uninitialized); returns the first one.
  uint8_t* Put(uint32_t n);
  // Truncates `n` bytes from the tail.
  void Trim(uint32_t n);

  // --- annotations ---
  SimTime arrival_time() const { return arrival_time_; }
  void set_arrival_time(SimTime t) { arrival_time_ = t; }

  uint16_t input_port() const { return input_port_; }
  void set_input_port(uint16_t p) { input_port_ = p; }

  uint32_t flow_hash() const { return flow_hash_; }
  void set_flow_hash(uint32_t h) { flow_hash_ = h; }

  VlbPhase vlb_phase() const { return vlb_phase_; }
  void set_vlb_phase(VlbPhase p) { vlb_phase_ = p; }

  // Output node of the cluster, encoded at the input node (the paper's
  // MAC-address trick, §6.1). kNoNode when unset.
  static constexpr uint16_t kNoNode = 0xffff;
  uint16_t output_node() const { return output_node_; }
  void set_output_node(uint16_t n) { output_node_ = n; }

  uint64_t flow_id() const { return flow_id_; }
  void set_flow_id(uint64_t id) { flow_id_ = id; }
  uint64_t flow_seq() const { return flow_seq_; }
  void set_flow_seq(uint64_t s) { flow_seq_ = s; }

  // Color annotation for Paint/CheckPaint-style elements.
  uint8_t paint() const { return paint_; }
  void set_paint(uint8_t c) { paint_ = c; }

  // Telemetry trace handle (telemetry::PathTracer); 0 = not sampled.
  uint64_t trace_handle() const { return trace_handle_; }
  void set_trace_handle(uint64_t h) { trace_handle_ = h; }

  // Ingress cycle stamp (telemetry::ReadCycles at NicPort delivery);
  // 0 = not stamped. Read out at ToDevice/drop to feed the measured
  // latency plane's log-bucketed histograms.
  uint64_t ingress_cycles() const { return ingress_cycles_; }
  void set_ingress_cycles(uint64_t c) { ingress_cycles_ = c; }

  // Queue-enqueue timestamp (seconds; steady clock in the threaded graph,
  // SimTime in the DES) stamped by AQM-enabled queues so the dequeue side
  // can measure sojourn time (CoDel). 0 = never enqueued.
  double enqueue_time() const { return enqueue_time_; }
  void set_enqueue_time(double t) { enqueue_time_ = t; }

  // Frame bytes as counted on the wire per the paper's convention
  // (no preamble/IFG accounting).
  uint32_t wire_bytes() const { return length_; }

  // Clears annotations and resets headroom; called by the pool on release.
  void ResetMetadata();

  PacketPool* origin_pool() const { return origin_pool_; }

  // Frame start assuming the default headroom. Forms the address from
  // `this` plus compile-time constants — no metadata load — so it is safe
  // to use as a software-prefetch target for a packet that is not in cache
  // yet. Every generator materializes frames at the default headroom;
  // encapsulation changes offset_ only after the headers have been
  // touched (and thus cached) anyway.
  const void* default_data() const { return buf_ + kDefaultHeadroom; }

 private:
  friend class PacketPool;
  friend struct PacketLayoutCheck;

  // --- hot annotation line (first cache line of the object) ---
  // Everything the forwarding path reads or writes per packet outside the
  // payload bytes lives here: buffer geometry, steering/flow fields, the
  // VLB phase, and the pool back-pointer for Free().
  uint32_t length_ = 0;
  uint32_t offset_ = kDefaultHeadroom;
  uint32_t flow_hash_ = 0;
  uint16_t input_port_ = 0;
  uint16_t output_node_ = kNoNode;
  VlbPhase vlb_phase_ = VlbPhase::kNone;
  uint8_t paint_ = 0;
  // Maintained by PacketPool to reject double-frees (two owners aliasing
  // one buffer).
  bool in_pool_ = false;
  uint64_t flow_id_ = 0;
  uint64_t flow_seq_ = 0;
  PacketPool* origin_pool_ = nullptr;
  SimTime arrival_time_ = 0;
  double enqueue_time_ = 0;

  // --- cold annotations (second line) ---
  // "Cold" here means cold for the forwarding fast path: the latency
  // plane touches these once at ingress (stamp) and once at egress/drop
  // (readout), never per element.
  uint64_t trace_handle_ = 0;
  uint64_t ingress_cycles_ = 0;

  // Cache-line-aligned so header accesses never straddle lines; the
  // alignment also pads the cold annotation area to a full line.
  alignas(kCacheLineBytes) uint8_t buf_[kMaxCapacity];

  // Stride pad: with the two metadata lines plus the 2 KiB buffer the
  // object would span an even number of cache lines (and the buffer alone
  // a power of two), so packets carved back-to-back from a pool would put
  // their headers in the same handful of cache sets. One extra line makes
  // the stride an odd line count — gcd(stride_lines, num_sets) == 1 — so
  // consecutive packets walk every set.
  [[maybe_unused]] uint8_t stride_pad_[kCacheLineBytes];
};

// Pins the cache-honest layout at compile time; a field added or moved
// carelessly fails the build, not a perf bisect three PRs later.
struct PacketLayoutCheck {
  static_assert(offsetof(Packet, length_) < kCacheLineBytes);
  static_assert(offsetof(Packet, offset_) < kCacheLineBytes);
  static_assert(offsetof(Packet, flow_hash_) < kCacheLineBytes);
  static_assert(offsetof(Packet, input_port_) < kCacheLineBytes);
  static_assert(offsetof(Packet, output_node_) < kCacheLineBytes);
  static_assert(offsetof(Packet, vlb_phase_) < kCacheLineBytes);
  static_assert(offsetof(Packet, paint_) < kCacheLineBytes);
  static_assert(offsetof(Packet, flow_id_) + sizeof(uint64_t) <= kCacheLineBytes);
  static_assert(offsetof(Packet, flow_seq_) + sizeof(uint64_t) <= kCacheLineBytes);
  static_assert(offsetof(Packet, origin_pool_) + sizeof(void*) <= kCacheLineBytes);
  // The latency-plane annotations stay off the hot line (stamped once at
  // ingress, read once at egress) but within the second line.
  static_assert(offsetof(Packet, trace_handle_) >= kCacheLineBytes);
  static_assert(offsetof(Packet, ingress_cycles_) + sizeof(uint64_t) <=
                2 * kCacheLineBytes);
  // The buffer starts on a cache line of its own.
  static_assert(offsetof(Packet, buf_) % kCacheLineBytes == 0);
  // Pool stride: whole cache lines, an odd number of them.
  static_assert(sizeof(Packet) % kCacheLineBytes == 0);
  static_assert((sizeof(Packet) / kCacheLineBytes) % 2 == 1,
                "pool stride must be an odd cache-line count to avoid set aliasing");
};

// Prefetches the two lines the batch elements touch per packet: the hot
// annotation line and the (default-headroom) header bytes.
inline void PrefetchPacketHeaders(const Packet* p) {
  PrefetchForRead(p);
  PrefetchForRead(p->default_data());
}

}  // namespace rb

#endif  // RB_PACKET_PACKET_HPP_
