// Fixed-capacity packet pool (freelist allocator).
//
// Real packet-processing systems never malloc per packet; they recycle
// buffers from a pre-allocated pool ("socket-buffer descriptors" in the
// paper). PacketPool mirrors that: Alloc() pops from a freelist, Free()
// pushes back. The pool is not thread-safe by itself; each worker thread
// owns its own pool in multi-threaded runs (per-core pools), matching the
// lock-free driver design of §4.2. Packet::origin_pool() lets any element
// return a packet to the pool it came from via PacketPool::Release().
#ifndef RB_PACKET_POOL_HPP_
#define RB_PACKET_POOL_HPP_

#include <cstddef>
#include <memory>
#include <vector>

#include "packet/packet.hpp"

namespace rb {

class PacketPool {
 public:
  // Pre-allocates `capacity` packets.
  explicit PacketPool(size_t capacity);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns nullptr when the pool is exhausted (the caller should count a
  // drop, as a NIC would when it has no free descriptors).
  Packet* Alloc();

  // Returns a packet to this pool. The packet must have come from here.
  void Free(Packet* p);

  // Returns `p` to whichever pool allocated it.
  static void Release(Packet* p);

  size_t capacity() const { return capacity_; }
  size_t available() const { return free_.size(); }
  size_t in_use() const { return capacity_ - free_.size(); }
  uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  size_t capacity_;
  std::unique_ptr<Packet[]> storage_;
  std::vector<Packet*> free_;
  uint64_t alloc_failures_ = 0;
};

}  // namespace rb

#endif  // RB_PACKET_POOL_HPP_
