// Fixed-capacity packet pool (freelist allocator).
//
// Real packet-processing systems never malloc per packet; they recycle
// buffers from a pre-allocated pool ("socket-buffer descriptors" in the
// paper). PacketPool mirrors that: Alloc() pops from a freelist, Free()
// pushes back. The pool is not thread-safe by itself; each worker thread
// owns its own pool in multi-threaded runs (per-core pools), matching the
// lock-free driver design of §4.2. Packet::origin_pool() lets any element
// return a packet to the pool it came from via PacketPool::Release().
#ifndef RB_PACKET_POOL_HPP_
#define RB_PACKET_POOL_HPP_

#include <cstddef>
#include <memory>
#include <vector>

#include "packet/packet.hpp"

namespace rb {

class PacketPool {
 public:
  // Pre-allocates `capacity` packets.
  explicit PacketPool(size_t capacity);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Returns nullptr when the pool is exhausted (the caller should count a
  // drop, as a NIC would when it has no free descriptors).
  Packet* Alloc();

  // Bulk freelist carve: pops up to `n` packets into `out` in one pass and
  // returns how many were carved. A partial carve (return < n) means the
  // pool ran dry mid-burst; the shortfall is counted into
  // alloc_failures(), one per missing packet, so bulk and per-packet
  // accounting agree. The caller owns the carved packets.
  size_t AllocBulk(Packet** out, size_t n);

  // Returns a packet to this pool. The packet must have come from here.
  void Free(Packet* p);

  // Bulk return of `n` packets. Each packet gets the same origin-pool and
  // double-free checks as Free(); the freelist grows by exactly n.
  void FreeBulk(Packet* const* pkts, size_t n);

  // Returns `p` to whichever pool allocated it.
  static void Release(Packet* p);

  // Index of `p` in this pool's backing array (0 .. capacity-1). The
  // packet must belong to this pool. Lets callers keep side-car state per
  // buffer (e.g. the injector's zero-extent watermark) without widening
  // Packet itself.
  size_t SlotIndex(const Packet* p) const;

  size_t capacity() const { return capacity_; }
  size_t available() const { return free_.size(); }
  size_t in_use() const { return capacity_ - free_.size(); }
  uint64_t alloc_failures() const { return alloc_failures_; }

 private:
  size_t capacity_;
  std::unique_ptr<Packet[]> storage_;
  std::vector<Packet*> free_;
  uint64_t alloc_failures_ = 0;
};

}  // namespace rb

#endif  // RB_PACKET_POOL_HPP_
