#include "packet/batch.hpp"

#include <cstring>

#include "packet/pool.hpp"

namespace rb {

void PacketBatch::Append(PacketBatch* other) {
  RB_CHECK_MSG(size_ + other->size_ <= kCapacity, "PacketBatch::Append overflow");
  std::memcpy(pkts_ + size_, other->pkts_, other->size_ * sizeof(Packet*));
  size_ += other->size_;
  other->size_ = 0;
}

uint32_t PacketBatch::AppendUpTo(PacketBatch* other, uint32_t max) {
  uint32_t n = other->size_ < max ? other->size_ : max;
  if (n > room()) {
    n = room();
  }
  if (n == 0) {
    return 0;
  }
  std::memcpy(pkts_ + size_, other->pkts_, n * sizeof(Packet*));
  size_ += n;
  // Close the gap at the front of `other` so arrival order survives.
  std::memmove(other->pkts_, other->pkts_ + n, (other->size_ - n) * sizeof(Packet*));
  other->size_ -= n;
  return n;
}

void PacketBatch::SplitAfter(uint32_t n, PacketBatch* tail) {
  if (n >= size_) {
    return;
  }
  const uint32_t moving = size_ - n;
  RB_CHECK_MSG(tail->size_ + moving <= kCapacity, "PacketBatch::SplitAfter overflow");
  std::memcpy(tail->pkts_ + tail->size_, pkts_ + n, moving * sizeof(Packet*));
  tail->size_ += moving;
  size_ = n;
}

void PacketBatch::ReleaseAll() {
  for (uint32_t i = 0; i < size_; ++i) {
    PacketPool::Release(pkts_[i]);
  }
  size_ = 0;
}

uint64_t PacketBatch::TotalBytes() const {
  uint64_t bytes = 0;
  for (uint32_t i = 0; i < size_; ++i) {
    bytes += pkts_[i]->length();
  }
  return bytes;
}

}  // namespace rb
