#include "packet/packet.hpp"

#include "common/log.hpp"

namespace rb {

void Packet::SetPayload(const uint8_t* src, uint32_t len) {
  RB_CHECK(kDefaultHeadroom + len <= kMaxCapacity);
  offset_ = kDefaultHeadroom;
  memcpy(buf_ + offset_, src, len);
  length_ = len;
}

void Packet::SetLength(uint32_t len) {
  RB_CHECK(offset_ + len <= kMaxCapacity);
  length_ = len;
}

uint8_t* Packet::Push(uint32_t n) {
  RB_CHECK_MSG(offset_ >= n, "no headroom left");
  offset_ -= n;
  length_ += n;
  return buf_ + offset_;
}

void Packet::Pull(uint32_t n) {
  RB_CHECK(n <= length_);
  offset_ += n;
  length_ -= n;
}

uint8_t* Packet::Put(uint32_t n) {
  RB_CHECK_MSG(tailroom() >= n, "no tailroom left");
  uint8_t* p = buf_ + offset_ + length_;
  length_ += n;
  return p;
}

void Packet::Trim(uint32_t n) {
  RB_CHECK(n <= length_);
  length_ -= n;
}

void Packet::ResetMetadata() {
  length_ = 0;
  offset_ = kDefaultHeadroom;
  arrival_time_ = 0;
  input_port_ = 0;
  flow_hash_ = 0;
  vlb_phase_ = VlbPhase::kNone;
  output_node_ = kNoNode;
  flow_id_ = 0;
  flow_seq_ = 0;
  paint_ = 0;
  trace_handle_ = 0;
  ingress_cycles_ = 0;
  enqueue_time_ = 0;
}

}  // namespace rb
