#include "packet/flow.hpp"

#include "packet/headers.hpp"

namespace rb {

uint64_t FlowHash64(const FlowKey& key) {
  uint64_t x = (static_cast<uint64_t>(key.src_ip) << 32) | key.dst_ip;
  uint64_t y = (static_cast<uint64_t>(key.src_port) << 24) |
               (static_cast<uint64_t>(key.dst_port) << 8) | key.protocol;
  // Two rounds of the splitmix64 finalizer over the combined words.
  uint64_t z = x ^ (y * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  z += y;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool ExtractFlowKey(const Packet& p, FlowKey* key) {
  if (p.length() < EthernetView::kSize + Ipv4View::kMinSize) {
    return false;
  }
  // const_cast is confined here: views are read-only in this function.
  uint8_t* base = const_cast<uint8_t*>(p.data());
  EthernetView eth{base};
  if (eth.ether_type() != EthernetView::kTypeIpv4) {
    return false;
  }
  Ipv4View ip{base + EthernetView::kSize};
  if (ip.version() != 4 || ip.ihl() < 5) {
    return false;
  }
  key->src_ip = ip.src();
  key->dst_ip = ip.dst();
  key->protocol = ip.protocol();
  key->src_port = 0;
  key->dst_port = 0;
  uint32_t l4_off = EthernetView::kSize + ip.header_length();
  if ((ip.protocol() == Ipv4View::kProtoTcp || ip.protocol() == Ipv4View::kProtoUdp) &&
      p.length() >= l4_off + 4) {
    key->src_port = LoadBe16(base + l4_off);
    key->dst_port = LoadBe16(base + l4_off + 2);
  }
  return true;
}

}  // namespace rb
