// PacketBatch: the unit of dataflow in the batch-native element graph.
//
// RouteBricks' within-server scaling rests on batching (§4.2, Table 1):
// the driver polls kp packets per iteration and the NIC batches kn
// descriptors per PCIe transaction. A PacketBatch carries that burst
// *through the element graph* instead of serializing it back into
// per-packet virtual calls at the FromDevice boundary: one
// Element::PushBatch call moves the whole burst, so per-hop bookkeeping
// (virtual dispatch, profiler scopes, telemetry counters, LPM/ESP setup)
// is paid once per batch instead of once per packet.
//
// Representation: a fixed-capacity array of Packet* (no allocation, lives
// on the stack or inline in an element). kCapacity bounds the largest
// burst the graph ever moves — the driver's poll limit (256) — so a batch
// can always absorb a full kp poll.
//
// Ownership: a batch does not own its packets; it is a carrier. The
// convention mirrors the per-packet rule ("a pushed packet belongs to the
// callee"): PushBatch(port, batch) transfers ownership of every packet in
// `batch` to the callee, which must leave the batch empty on return
// (forward, enqueue, or release each packet — never silently keep the
// array populated). ReleaseAll() is the batch analogue of
// PacketPool::Release for drops.
#ifndef RB_PACKET_BATCH_HPP_
#define RB_PACKET_BATCH_HPP_

#include <cstdint>

#include "common/log.hpp"
#include "packet/packet.hpp"

namespace rb {

class PacketBatch {
 public:
  // Largest burst the dataflow ever carries: the driver's poll ceiling.
  static constexpr uint32_t kCapacity = 256;

  PacketBatch() = default;
  // Batches are carriers, not owners; copying one would alias raw packet
  // pointers and invite double-release.
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == kCapacity; }
  uint32_t room() const { return kCapacity - size_; }

  // Unchecked on purpose: indexing is the innermost loop of every
  // batch-native element.
  Packet* operator[](uint32_t i) const { return pkts_[i]; }

  Packet** begin() { return pkts_; }
  Packet** end() { return pkts_ + size_; }
  Packet* const* begin() const { return pkts_; }
  Packet* const* end() const { return pkts_ + size_; }

  void PushBack(Packet* p) {
    RB_CHECK_MSG(size_ < kCapacity, "PacketBatch overflow");
    pkts_[size_++] = p;
  }

  bool TryPushBack(Packet* p) {
    if (size_ == kCapacity) {
      return false;
    }
    pkts_[size_++] = p;
    return true;
  }

  // Forgets the packets without releasing them (ownership was transferred
  // elsewhere, e.g. into a ring or downstream element).
  void Clear() { size_ = 0; }

  // Raw tail access for bulk fills: a producer (NicPort::PollRx) writes up
  // to room() pointers at tail(), then the caller commits them. Avoids a
  // staging copy on the rx hot path.
  Packet** tail() { return pkts_ + size_; }
  void CommitAppended(uint32_t n) {
    RB_CHECK_MSG(size_ + n <= kCapacity, "PacketBatch commit overflow");
    size_ += n;
  }

  // Moves every packet from `other` onto the tail of this batch; `other`
  // is left empty. RB_CHECKs that the combined size fits.
  void Append(PacketBatch* other);

  // Moves up to `max` packets from the *front* of `other` (preserving
  // arrival order) onto the tail of this batch; returns how many moved.
  uint32_t AppendUpTo(PacketBatch* other, uint32_t max);

  // Splits this batch after the first `n` packets: [0, n) stay here,
  // [n, size) move to `tail` (appended, order preserved). n > size is a
  // no-op. The classifier-style inverse of Append.
  void SplitAfter(uint32_t n, PacketBatch* tail);

  // Returns every packet to its origin pool and empties the batch — the
  // batch-granular drop path.
  void ReleaseAll();

  // Sum of Packet::length() over the batch (profiler work accounting).
  uint64_t TotalBytes() const;

 private:
  uint32_t size_ = 0;
  Packet* pkts_[kCapacity];
};

}  // namespace rb

#endif  // RB_PACKET_BATCH_HPP_
