#include "workload/abilene.hpp"

#include "packet/headers.hpp"

namespace rb {

uint32_t AbileneSizeDistribution::NextSize(Rng* rng) {
  double u = rng->NextDouble();
  if (u < kSmallWeight) {
    return kSmall;
  }
  if (u < kSmallWeight + kMediumWeight) {
    return kMedium;
  }
  return kLarge;
}

double AbileneSizeDistribution::MeanSize() const {
  return kSmallWeight * kSmall + kMediumWeight * kMedium + kLargeWeight * kLarge;
}

AbileneGenerator::AbileneGenerator(const AbileneConfig& config) : rng_(config.seed) {
  flows_.reserve(config.num_flows);
  for (uint64_t i = 0; i < config.num_flows; ++i) {
    FlowKey key;
    key.src_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
    key.dst_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
    key.src_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    key.dst_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    key.protocol = (i % 10 < 9) ? Ipv4View::kProtoTcp : Ipv4View::kProtoUdp;
    flows_.push_back(key);
  }
  flow_seq_.assign(flows_.size(), 0);
}

FrameSpec AbileneGenerator::Next() {
  uint64_t idx = rng_.NextBounded(flows_.size());
  FrameSpec spec;
  spec.size = dist_.NextSize(&rng_);
  spec.flow = flows_[idx];
  spec.flow_id = idx;
  spec.flow_seq = flow_seq_[idx]++;
  return spec;
}

}  // namespace rb
