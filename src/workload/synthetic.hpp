// Synthetic fixed-size and random-destination workloads (§5.1's "synthetic
// workloads, where every packet has a fixed size of P bytes" with "random
// destination addresses so as to stress cache locality").
#ifndef RB_WORKLOAD_SYNTHETIC_HPP_
#define RB_WORKLOAD_SYNTHETIC_HPP_

#include <memory>

#include "workload/workload.hpp"

namespace rb {

class FixedSizeDistribution : public SizeDistribution {
 public:
  explicit FixedSizeDistribution(uint32_t size) : size_(size) {}
  uint32_t NextSize(Rng*) override { return size_; }
  double MeanSize() const override { return size_; }

 private:
  uint32_t size_;
};

struct SyntheticConfig {
  uint32_t packet_size = 64;
  uint64_t num_flows = 4096;   // distinct 5-tuples to draw from
  bool random_dst = true;      // random destination address per packet
  uint64_t seed = 1;
};

// Generates an endless stream of FrameSpecs. Flow ids are stable per
// 5-tuple; per-flow sequence numbers increase monotonically.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(const SyntheticConfig& config);

  FrameSpec Next();

  double mean_size() const { return config_.packet_size; }

 private:
  SyntheticConfig config_;
  Rng rng_;
  std::vector<FlowKey> flows_;
  std::vector<uint64_t> flow_seq_;
};

}  // namespace rb

#endif  // RB_WORKLOAD_SYNTHETIC_HPP_
