// Zero-copy bulk frame injection for the measured pipelines.
//
// The benches used to pay a full AllocFrame per injected packet inside
// their measured loops: a pool pop, a whole-frame memset, three header
// writers, and a from-scratch IP checksum — 47-72% of "pipeline"
// cycles/packet in the committed Fig. 9 baseline was this harness
// scaffolding, not the router. BulkInjector moves frame construction off
// the per-packet path:
//
//   * setup: one immutable frame template per distinct frame size is
//     materialized once (headers + zeroed payload + a valid checksum);
//   * per burst: a PacketBatch is carved from the pool in one
//     PacketPool::AllocBulk call, the template is memcpy'd once per
//     packet, and only the varying fields are patched — IP src/dst (with
//     an RFC 1624 incremental checksum update, bit-identical to the full
//     recompute), UDP ports, the protocol byte, and the flow_id/seq/hash
//     annotations.
//
// The patched output is byte-identical to MaterializeFrame for the same
// FrameSpec (asserted by tests/workload/injector_test.cpp), so switching a
// bench to the injector changes *what is measured*, not what the router
// sees.
//
// Routing workloads draw destination addresses from a PrefixSampler
// (lookup/table_gen.hpp) — random addresses *covered by the installed
// table* — instead of reject-sampling uniform addresses against
// router.table().Lookup() inside the measured scope, which both charged
// router lookup cycles to the harness and pre-warmed the lookup caches
// the random-destination workload exists to defeat.
//
// Pool exhaustion mid-burst is not silent truncation: the shortfall is
// counted in pool_exhausted() (and exported as a handler), so a bench that
// outruns its drain loop sees an explicit drop bucket.
#ifndef RB_WORKLOAD_INJECTOR_HPP_
#define RB_WORKLOAD_INJECTOR_HPP_

#include <array>
#include <memory>
#include <vector>

#include "common/prefetch.hpp"
#include "lookup/table_gen.hpp"
#include "packet/batch.hpp"
#include "telemetry/handler.hpp"
#include "workload/abilene.hpp"
#include "workload/synthetic.hpp"

namespace rb {

struct InjectorConfig {
  // Workload source: the synthetic fixed-size generator or the
  // Abilene-like trimodal mix.
  bool abilene = false;
  SyntheticConfig synthetic;
  AbileneConfig abilene_cfg;

  // When non-null, every spec's destination address is re-drawn from the
  // installed prefix set (rtr workloads). Overrides synthetic.random_dst
  // (the generator's own uniform randomization is disabled so addresses
  // are randomized exactly once, and are always routable). Must outlive
  // the injector.
  const PrefixSampler* dst_sampler = nullptr;
  uint64_t sampler_seed = 0x5eedd57;

  // Caller's promise that nothing downstream writes frame bytes past the
  // first two cache lines (headers + patch area) between fills — true for
  // forwarding/routing pipelines, which only touch TTL/checksum, and
  // false for IPsec, which rewrites the payload. When set, a recycled
  // buffer keeps its zero payload from the previous fill and NextBurst
  // copies only the 128 B head, independent of frame size.
  bool recycled_payload_is_clean = false;
};

// Ethernet + IPv4 + UDP headers and every field FillFrame patches sit
// inside the first two cache lines of a frame.
inline constexpr uint32_t kFillHeadBytes = 2 * kCacheLineBytes;

class BulkInjector {
 public:
  // Templates are materialized lazily, one per distinct frame size (the
  // synthetic generator uses one; Abilene uses its three modes).
  BulkInjector(const InjectorConfig& config, PacketPool* pool);

  // Next logical frame from the configured generator, with the
  // destination re-drawn from the prefix sampler when configured.
  FrameSpec NextSpec();

  // Template-fills an already-allocated packet; byte-identical to
  // MaterializeFrame(spec, p) including annotations. Exposed for the
  // equivalence tests and for callers that manage their own allocation.
  void FillFrame(const FrameSpec& spec, Packet* p);

  // Carves up to `n` packets from the pool in one bulk call, fills each
  // from its size's template, and appends them to `out`. Returns the
  // number injected; a shortfall (pool dry) is counted in
  // pool_exhausted() rather than silently truncating the burst.
  // n must fit in out->room().
  uint32_t NextBurst(uint32_t n, PacketBatch* out);

  // Pre-draws `n` frames' varying fields — addresses, ports, protocol,
  // size, flow annotations, and the *final* header checksum — into a flat
  // setup-time plan. A planned injector's NextBurst cycles through the
  // records and skips all per-packet generator, hash, and checksum
  // arithmetic: the measured loop is one template memcpy plus a dozen
  // scalar stores. Records are drawn through NextSpec(), so the frame
  // stream is identical to the unplanned one.
  void PrecomputePlan(size_t n);
  bool planned() const { return !plan_.empty(); }

  uint64_t injected_packets() const { return injected_packets_; }
  uint64_t injected_bytes() const { return injected_bytes_; }
  // Explicit drop bucket: packets a burst asked for that the pool could
  // not supply.
  uint64_t pool_exhausted() const { return pool_exhausted_; }

  double mean_size() const;

  // Exports "<owner>.packets/bytes/pool_exhausted" read handlers
  // (DESIGN.md §13/§14).
  void AddHandlers(telemetry::HandlerRegistry* handlers, const std::string& owner = "injector");

 private:
  struct Template {
    uint32_t size = 0;
    uint16_t ip_checksum = 0;  // checksum over the template's header (src=dst=0, UDP)
    std::array<uint8_t, Packet::kMaxCapacity> bytes{};
  };

  // One frame's varying fields, fully resolved (checksum included) so the
  // fill loop does no arithmetic. 28 bytes: the plan streams sequentially
  // through the hardware prefetcher.
  struct PatchRecord {
    uint32_t src_ip = 0;
    uint32_t dst_ip = 0;
    uint32_t flow_id = 0;
    uint32_t flow_seq = 0;
    uint32_t flow_hash = 0;
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint16_t ip_checksum = 0;
    uint16_t size = 0;
    uint8_t protocol = 0;
  };

  const Template& TemplateFor(uint32_t size);
  PatchRecord BuildRecord(const FrameSpec& spec);
  void FillFromRecord(const PatchRecord& r, Packet* p);

  InjectorConfig config_;
  PacketPool* pool_;
  std::unique_ptr<SyntheticGenerator> synthetic_;
  std::unique_ptr<AbileneGenerator> abilene_;
  Rng sampler_rng_;
  // A handful of entries (one per frame size); linear scan with a
  // last-used cache beats any map on the hot path.
  std::vector<std::unique_ptr<Template>> templates_;
  const Template* last_template_ = nullptr;
  std::vector<PatchRecord> plan_;
  size_t plan_pos_ = 0;
  // Per pool slot: bytes from frame start known to be zero (empty when
  // recycled_payload_is_clean is off).
  std::vector<uint16_t> zeroed_to_;

  uint64_t injected_packets_ = 0;
  uint64_t injected_bytes_ = 0;
  uint64_t pool_exhausted_ = 0;
};

}  // namespace rb

#endif  // RB_WORKLOAD_INJECTOR_HPP_
