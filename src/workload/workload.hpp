// Workload definitions shared by the single-server and cluster experiments.
//
// A workload is characterized by (1) the packet-size distribution and
// (2) the per-packet application (§5.1). FrameSpec is the logical packet
// the generators produce; it can be materialized into a real rb::Packet
// (with Ethernet/IPv4/UDP headers) for the functional pipeline, or used
// directly by the cluster discrete-event simulator, which does not need
// payload bytes.
#ifndef RB_WORKLOAD_WORKLOAD_HPP_
#define RB_WORKLOAD_WORKLOAD_HPP_

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "packet/flow.hpp"
#include "packet/packet.hpp"
#include "packet/pool.hpp"

namespace rb {

// The three packet-processing applications of the evaluation.
enum class App : uint8_t {
  kMinimalForwarding = 0,
  kIpRouting = 1,
  kIpsec = 2,
};

const char* AppName(App app);

// A logical frame: everything the simulators need, no payload bytes.
struct FrameSpec {
  uint32_t size = 64;   // frame bytes (Ethernet header..payload, no FCS gap accounting)
  FlowKey flow;
  uint64_t flow_id = 0;
  uint64_t flow_seq = 0;
};

// Materializes a FrameSpec into `p`: writes Ethernet + IPv4 + UDP headers,
// pads the payload to `spec.size` bytes, stamps annotations. The IPv4
// total length and checksum are valid.
void MaterializeFrame(const FrameSpec& spec, Packet* p);

// Allocates from `pool` and materializes; returns nullptr when exhausted.
Packet* AllocFrame(const FrameSpec& spec, PacketPool* pool);

// --- size distributions ---

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  virtual uint32_t NextSize(Rng* rng) = 0;
  virtual double MeanSize() const = 0;
};

}  // namespace rb

#endif  // RB_WORKLOAD_WORKLOAD_HPP_
