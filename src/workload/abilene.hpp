// Abilene-like trace synthesis.
//
// The paper's trace-driven workload is the "Abilene-I" NLANR packet trace
// (§5.1), which is no longer distributable; we substitute a synthetic
// trace whose packet-size distribution matches the trimodal shape of
// backbone traffic of that era (ACK-sized minimum frames, a mid band near
// 576 B from classic path-MTU defaults, and full 1500 B MTU frames). The
// mixture weights are chosen so the mean frame size is ~730 B, which makes
// the forwarding and routing applications NIC-limited (24.6 Gbps input
// cap) rather than CPU-limited, exactly the regime the paper reports.
#ifndef RB_WORKLOAD_ABILENE_HPP_
#define RB_WORKLOAD_ABILENE_HPP_

#include "workload/workload.hpp"

namespace rb {

class AbileneSizeDistribution : public SizeDistribution {
 public:
  AbileneSizeDistribution() = default;

  uint32_t NextSize(Rng* rng) override;
  double MeanSize() const override;

  // The three modes and their probabilities (exposed for tests).
  static constexpr uint32_t kSmall = 64;
  static constexpr uint32_t kMedium = 576;
  static constexpr uint32_t kLarge = 1500;
  static constexpr double kSmallWeight = 0.44;
  static constexpr double kMediumWeight = 0.15;
  static constexpr double kLargeWeight = 0.41;
};

// Convenience: "the Abilene workload" as a generator of FrameSpecs over a
// configurable flow population (sizes i.i.d. from the mixture; flows drawn
// uniformly, per-flow sequence numbers maintained).
struct AbileneConfig {
  uint64_t num_flows = 8192;
  uint64_t seed = 7;
};

class AbileneGenerator {
 public:
  explicit AbileneGenerator(const AbileneConfig& config);

  FrameSpec Next();
  double mean_size() const { return dist_.MeanSize(); }

 private:
  AbileneSizeDistribution dist_;
  Rng rng_;
  std::vector<FlowKey> flows_;
  std::vector<uint64_t> flow_seq_;
};

}  // namespace rb

#endif  // RB_WORKLOAD_ABILENE_HPP_
