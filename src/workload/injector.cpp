#include "workload/injector.hpp"

#include <cstring>

#include "common/log.hpp"
#include "common/prefetch.hpp"
#include "packet/checksum.hpp"
#include "packet/headers.hpp"

namespace rb {

BulkInjector::BulkInjector(const InjectorConfig& config, PacketPool* pool)
    : config_(config), pool_(pool), sampler_rng_(config.sampler_seed) {
  RB_CHECK(pool_ != nullptr);
  if (config_.abilene) {
    abilene_ = std::make_unique<AbileneGenerator>(config_.abilene_cfg);
  } else {
    SyntheticConfig synth = config_.synthetic;
    if (config_.dst_sampler != nullptr) {
      // Addresses are randomized exactly once, by the sampler; leaving the
      // generator's uniform randomization on would draw unroutable dsts
      // that the sampler then overwrites anyway.
      synth.random_dst = false;
    }
    synthetic_ = std::make_unique<SyntheticGenerator>(synth);
  }
  if (config_.recycled_payload_is_clean) {
    zeroed_to_.assign(pool_->capacity(), 0);
  }
}

FrameSpec BulkInjector::NextSpec() {
  FrameSpec spec = config_.abilene ? abilene_->Next() : synthetic_->Next();
  if (config_.dst_sampler != nullptr) {
    spec.flow.dst_ip = config_.dst_sampler->NextDst(&sampler_rng_);
  }
  return spec;
}

const BulkInjector::Template& BulkInjector::TemplateFor(uint32_t size) {
  if (last_template_ != nullptr && last_template_->size == size) {
    return *last_template_;
  }
  for (const auto& t : templates_) {
    if (t->size == size) {
      last_template_ = t.get();
      return *t;
    }
  }
  // First frame of this size: materialize the canonical template once. The
  // all-zero flow (src=dst=0, ports 0, UDP) makes the per-packet patch a
  // pure "add the real field" checksum update with old halves of zero.
  auto t = std::make_unique<Template>();
  t->size = size;
  FrameSpec canon;
  canon.size = size;
  canon.flow = FlowKey{};
  canon.flow.protocol = Ipv4View::kProtoUdp;
  auto scratch = std::make_unique<Packet>();
  MaterializeFrame(canon, scratch.get());
  std::memcpy(t->bytes.data(), scratch->data(), size);
  t->ip_checksum = Ipv4View{scratch->data() + EthernetView::kSize}.checksum();
  templates_.push_back(std::move(t));
  last_template_ = templates_.back().get();
  return *last_template_;
}

BulkInjector::PatchRecord BulkInjector::BuildRecord(const FrameSpec& spec) {
  // Resolve everything that varies across packets of one size — including
  // the final header checksum (an RFC 1624 incremental update from the
  // template's checksum: bit-identical to MaterializeFrame's full
  // recompute, since both arithmetics represent every nonzero
  // one's-complement residue the same way and the header sum is never
  // zero) and the flow hash — so the fill loop is pure stores.
  const Template& tmpl = TemplateFor(spec.size);
  PatchRecord r;
  r.size = static_cast<uint16_t>(spec.size);
  r.src_ip = spec.flow.src_ip;
  r.dst_ip = spec.flow.dst_ip;
  r.src_port = spec.flow.src_port;
  r.dst_port = spec.flow.dst_port;
  r.protocol = spec.flow.protocol ? spec.flow.protocol : Ipv4View::kProtoUdp;
  uint16_t csum = tmpl.ip_checksum;
  if (r.protocol != Ipv4View::kProtoUdp) {
    csum = ChecksumUpdate16(csum, static_cast<uint16_t>((64u << 8) | Ipv4View::kProtoUdp),
                            static_cast<uint16_t>((64u << 8) | r.protocol));
  }
  if (r.src_ip != 0) {
    csum = ChecksumUpdate32(csum, 0, r.src_ip);
  }
  if (r.dst_ip != 0) {
    csum = ChecksumUpdate32(csum, 0, r.dst_ip);
  }
  r.ip_checksum = csum;
  r.flow_id = spec.flow_id;
  r.flow_seq = spec.flow_seq;
  r.flow_hash = FlowHash32(spec.flow);
  return r;
}

void BulkInjector::FillFromRecord(const PatchRecord& r, Packet* p) {
  const Template& tmpl = TemplateFor(r.size);
  p->SetLength(r.size);
  // Every template byte past the first two cache lines (Ethernet + IP +
  // UDP and the whole patch area sit inside 128 B) is zero payload. When
  // the caller has declared the pipeline payload-clean
  // (recycled_payload_is_clean), a recycled buffer whose previous fill
  // already zeroed at least r.size bytes needs only the 128 B head copied
  // — the rest is still zero from the last pass, because nothing between
  // fills wrote past the headers. The watermark tracks the high-water
  // zero extent per pool slot. Frames that fit inside the head are copied
  // in full either way, and writing [0, 128) never disturbs the zero
  // extent at [128, W), so they skip the slot bookkeeping entirely —
  // which keeps the dominant 64 B workloads off the SlotIndex divide.
  uint32_t copy = r.size;
  if (r.size > kFillHeadBytes && !zeroed_to_.empty()) {
    const size_t slot = pool_->SlotIndex(p);
    if (zeroed_to_[slot] >= r.size) {
      copy = kFillHeadBytes;
    } else {
      zeroed_to_[slot] = r.size;
    }
  }
  std::memcpy(p->data(), tmpl.bytes.data(), copy);
  // Unconditional stores: the template holds zeros for every patched
  // field, so storing a zero is a no-op by value and cheaper than a
  // branch per field.
  uint8_t* ip = p->data() + EthernetView::kSize;
  ip[9] = r.protocol;
  StoreBe16(ip + 10, r.ip_checksum);
  StoreBe32(ip + 12, r.src_ip);
  StoreBe32(ip + 16, r.dst_ip);
  uint8_t* udp = ip + Ipv4View::kMinSize;
  StoreBe16(udp, r.src_port);
  StoreBe16(udp + 2, r.dst_port);
  p->set_flow_id(r.flow_id);
  p->set_flow_seq(r.flow_seq);
  p->set_flow_hash(r.flow_hash);
}

void BulkInjector::FillFrame(const FrameSpec& spec, Packet* p) {
  FillFromRecord(BuildRecord(spec), p);
}

void BulkInjector::PrecomputePlan(size_t n) {
  RB_CHECK_MSG(n > 0, "empty injection plan");
  plan_.clear();
  plan_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    plan_.push_back(BuildRecord(NextSpec()));
  }
  plan_pos_ = 0;
}

uint32_t BulkInjector::NextBurst(uint32_t n, PacketBatch* out) {
  RB_CHECK_MSG(n <= out->room(), "burst larger than batch room");
  Packet** slots = out->tail();
  uint32_t got = static_cast<uint32_t>(pool_->AllocBulk(slots, n));
  pool_exhausted_ += n - got;
  const bool use_plan = !plan_.empty();
  for (uint32_t i = 0; i < got; ++i) {
    if (use_plan) {
      const PatchRecord& r = plan_[plan_pos_];
      plan_pos_ = plan_pos_ + 1 == plan_.size() ? 0 : plan_pos_ + 1;
      if (i + 1 < got) {
        // The next packet's metadata line and the buffer lines its fill
        // will store to are written next; freelist neighbours are not
        // address-adjacent, so ask for them early. The upcoming record
        // gives the exact frame size; clean-recycled fills only write the
        // 128 B head.
        PrefetchForWrite(slots[i + 1]);
        auto* next = static_cast<char*>(
            const_cast<void*>(slots[i + 1]->default_data()));
        uint32_t span = plan_[plan_pos_].size;
        if (!zeroed_to_.empty() && span > kFillHeadBytes) {
          span = kFillHeadBytes;
        }
        for (uint32_t off = 0; off < span; off += kCacheLineBytes) {
          PrefetchForWrite(next + off);
        }
      }
      FillFromRecord(r, slots[i]);
      injected_bytes_ += r.size;
    } else {
      if (i + 1 < got) {
        PrefetchForWrite(slots[i + 1]);
        PrefetchForWrite(const_cast<void*>(slots[i + 1]->default_data()));
      }
      FrameSpec spec = NextSpec();
      FillFrame(spec, slots[i]);
      injected_bytes_ += spec.size;
    }
  }
  injected_packets_ += got;
  out->CommitAppended(got);
  return got;
}

double BulkInjector::mean_size() const {
  return config_.abilene ? abilene_->mean_size() : synthetic_->mean_size();
}

void BulkInjector::AddHandlers(telemetry::HandlerRegistry* handlers, const std::string& owner) {
  handlers->AddRead(owner + ".packets", [this] { return std::to_string(injected_packets_); });
  handlers->AddRead(owner + ".bytes", [this] { return std::to_string(injected_bytes_); });
  handlers->AddRead(owner + ".pool_exhausted",
                    [this] { return std::to_string(pool_exhausted_); });
}

}  // namespace rb
