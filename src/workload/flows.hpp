// Time-ordered, flow-structured traffic generation.
//
// The reordering experiment (§6.2) needs traffic with realistic flow
// dynamics: many concurrent TCP/UDP flows, heavy-tailed flow sizes, and
// in-flow packet gaps small compared to the flowlet threshold δ so that
// flowlets actually form. FlowTrafficGenerator produces a time-ordered
// stream of (timestamp, FrameSpec): flows arrive as a Poisson process,
// each flow emits a Pareto-distributed number of packets with exponential
// in-flow gaps, and packet sizes come from a pluggable SizeDistribution.
#ifndef RB_WORKLOAD_FLOWS_HPP_
#define RB_WORKLOAD_FLOWS_HPP_

#include <memory>
#include <queue>

#include "workload/workload.hpp"

namespace rb {

struct FlowGenConfig {
  double flow_arrival_rate = 1000.0;  // new flows per second
  double mean_flow_packets = 20.0;    // mean packets per flow (Pareto)
  double pareto_alpha = 1.5;          // flow-size tail index
  double in_flow_pps = 1000.0;        // packet rate within an active flow
  uint64_t seed = 11;
};

class FlowTrafficGenerator {
 public:
  struct Item {
    SimTime time = 0;
    FrameSpec spec;
  };

  FlowTrafficGenerator(const FlowGenConfig& config, std::unique_ptr<SizeDistribution> sizes);

  // Returns the next packet in global time order. The stream is endless.
  Item Next();

  // Aggregate offered load implied by the configuration (bps).
  double OfferedBps() const;

  // Helper: configuration that offers ~`target_bps` with the given size
  // distribution mean and flow shape.
  static FlowGenConfig ConfigForRate(double target_bps, double mean_frame_bytes,
                                     double mean_flow_packets, double in_flow_pps, uint64_t seed);

  uint64_t flows_started() const { return next_flow_id_; }

 private:
  struct ActiveFlow {
    SimTime next_emit = 0;
    FlowKey key;
    uint64_t flow_id = 0;
    uint64_t seq = 0;
    uint64_t remaining = 0;
    bool operator>(const ActiveFlow& o) const { return next_emit > o.next_emit; }
  };

  void StartFlow(SimTime now);

  FlowGenConfig config_;
  std::unique_ptr<SizeDistribution> sizes_;
  Rng rng_;
  SimTime next_flow_arrival_ = 0;
  uint64_t next_flow_id_ = 0;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, std::greater<>> active_;
};

// Million-flow churn for the stateful plane (DESIGN.md §17).
//
// FlowTrafficGenerator above models *time*: it is built for flowlet
// experiments where inter-packet gaps matter, and its priority queue
// caps how many flows are practically concurrent. Stateful-NF stress
// needs the opposite trade: millions of flows live at once, packet
// emission skewed heavy-tailed across them (a few elephants, a long
// tail of mice), and continuous flow birth/death so the flow table sees
// insert/evict churn rather than a static working set. FlowChurnGenerator
// drops the clock and models exactly that population.
struct FlowChurnConfig {
  size_t target_flows = 1 << 20;  // concurrent-flow population after ramp
  double zipf_s = 1.1;            // emission skew across active flows
  double churn_per_packet = 1e-3;  // P(one death + one birth) per packet
  uint64_t seed = 11;
};

class FlowChurnGenerator {
 public:
  struct Item {
    uint64_t flow_id = 0;
    FlowKey key;
  };

  explicit FlowChurnGenerator(const FlowChurnConfig& config);

  // Returns the next packet's flow. Ramps the population one birth per
  // call until `target_flows` are live, then holds it there under
  // churn: with probability `churn_per_packet` a uniform-random active
  // flow dies and a fresh one is born in its place. Same seed, same
  // stream — forever.
  Item Next();

  // Deterministic 5-tuple for a flow id (pure function of the id, so
  // two generators with the same seed agree on every key).
  static FlowKey KeyFor(uint64_t flow_id);

  size_t active_flows() const { return active_.size(); }
  uint64_t births() const { return births_; }
  uint64_t deaths() const { return deaths_; }

 private:
  uint64_t PickActive();  // Zipf-skewed index into the active population

  FlowChurnConfig config_;
  Rng rng_;
  std::vector<uint64_t> active_;  // live flow ids, order = Zipf rank
  uint64_t next_flow_id_ = 0;
  uint64_t births_ = 0;
  uint64_t deaths_ = 0;
};

}  // namespace rb

#endif  // RB_WORKLOAD_FLOWS_HPP_
