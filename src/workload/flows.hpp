// Time-ordered, flow-structured traffic generation.
//
// The reordering experiment (§6.2) needs traffic with realistic flow
// dynamics: many concurrent TCP/UDP flows, heavy-tailed flow sizes, and
// in-flow packet gaps small compared to the flowlet threshold δ so that
// flowlets actually form. FlowTrafficGenerator produces a time-ordered
// stream of (timestamp, FrameSpec): flows arrive as a Poisson process,
// each flow emits a Pareto-distributed number of packets with exponential
// in-flow gaps, and packet sizes come from a pluggable SizeDistribution.
#ifndef RB_WORKLOAD_FLOWS_HPP_
#define RB_WORKLOAD_FLOWS_HPP_

#include <memory>
#include <queue>

#include "workload/workload.hpp"

namespace rb {

struct FlowGenConfig {
  double flow_arrival_rate = 1000.0;  // new flows per second
  double mean_flow_packets = 20.0;    // mean packets per flow (Pareto)
  double pareto_alpha = 1.5;          // flow-size tail index
  double in_flow_pps = 1000.0;        // packet rate within an active flow
  uint64_t seed = 11;
};

class FlowTrafficGenerator {
 public:
  struct Item {
    SimTime time = 0;
    FrameSpec spec;
  };

  FlowTrafficGenerator(const FlowGenConfig& config, std::unique_ptr<SizeDistribution> sizes);

  // Returns the next packet in global time order. The stream is endless.
  Item Next();

  // Aggregate offered load implied by the configuration (bps).
  double OfferedBps() const;

  // Helper: configuration that offers ~`target_bps` with the given size
  // distribution mean and flow shape.
  static FlowGenConfig ConfigForRate(double target_bps, double mean_frame_bytes,
                                     double mean_flow_packets, double in_flow_pps, uint64_t seed);

  uint64_t flows_started() const { return next_flow_id_; }

 private:
  struct ActiveFlow {
    SimTime next_emit = 0;
    FlowKey key;
    uint64_t flow_id = 0;
    uint64_t seq = 0;
    uint64_t remaining = 0;
    bool operator>(const ActiveFlow& o) const { return next_emit > o.next_emit; }
  };

  void StartFlow(SimTime now);

  FlowGenConfig config_;
  std::unique_ptr<SizeDistribution> sizes_;
  Rng rng_;
  SimTime next_flow_arrival_ = 0;
  uint64_t next_flow_id_ = 0;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, std::greater<>> active_;
};

}  // namespace rb

#endif  // RB_WORKLOAD_FLOWS_HPP_
