// Cluster traffic matrices.
//
// VLB's processing requirement depends on the traffic matrix: a uniform
// matrix lets Direct VLB route everything directly (per-node rate 2R); a
// worst-case matrix forces full two-phase load balancing (3R) (§3.2).
// TrafficMatrix describes, for each input node, the share of its traffic
// destined to each output node, and supports sampling.
#ifndef RB_WORKLOAD_TRAFFIC_MATRIX_HPP_
#define RB_WORKLOAD_TRAFFIC_MATRIX_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace rb {

class TrafficMatrix {
 public:
  // Every input spreads uniformly over all outputs (including the
  // node's own external port, as an any-to-any pattern does).
  static TrafficMatrix Uniform(uint16_t n);

  // All traffic enters at `src` and leaves at `dst` (§6.2's reordering
  // experiment forces the whole trace through one input/output pair).
  static TrafficMatrix SinglePair(uint16_t n, uint16_t src, uint16_t dst);

  // Every input sends `hot_fraction` of its traffic to `hot_dst` and
  // spreads the rest uniformly: an adversarial, non-uniform matrix.
  static TrafficMatrix Hotspot(uint16_t n, uint16_t hot_dst, double hot_fraction);

  // All traffic enters at `src`, split across outputs proportionally to
  // `weights` (size n, non-negative, positive sum; normalized here). The
  // overload bench's skewed single-ingress pattern: with weights [3,2,2,2]
  // every output's demand exceeds its fair share once the input is driven
  // past capacity, and the demands are deliberately unequal.
  static TrafficMatrix SingleInputWeighted(uint16_t n, uint16_t src,
                                           const std::vector<double>& weights);

  uint16_t num_nodes() const { return n_; }

  // Share of input `src`'s traffic destined to output `dst` (rows sum to 1
  // for inputs that send at all).
  double Share(uint16_t src, uint16_t dst) const { return shares_[src][dst]; }

  // True if input `src` offers any traffic.
  bool InputActive(uint16_t src) const;

  // Samples an output node for a packet entering at `src`.
  uint16_t SampleOutput(uint16_t src, Rng* rng) const;

 private:
  explicit TrafficMatrix(uint16_t n);

  uint16_t n_;
  std::vector<std::vector<double>> shares_;
};

}  // namespace rb

#endif  // RB_WORKLOAD_TRAFFIC_MATRIX_HPP_
