#include "workload/flows.hpp"

#include <cmath>

#include "common/log.hpp"
#include "packet/headers.hpp"

namespace rb {

FlowTrafficGenerator::FlowTrafficGenerator(const FlowGenConfig& config,
                                           std::unique_ptr<SizeDistribution> sizes)
    : config_(config), sizes_(std::move(sizes)), rng_(config.seed) {
  RB_CHECK(config_.flow_arrival_rate > 0);
  RB_CHECK(config_.mean_flow_packets >= 1);
  RB_CHECK(config_.in_flow_pps > 0);
  RB_CHECK(sizes_ != nullptr);
  next_flow_arrival_ = rng_.NextExponential(1.0 / config_.flow_arrival_rate);
}

void FlowTrafficGenerator::StartFlow(SimTime now) {
  ActiveFlow flow;
  flow.key.src_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
  flow.key.dst_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
  flow.key.src_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
  flow.key.dst_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
  flow.key.protocol = Ipv4View::kProtoTcp;
  flow.flow_id = next_flow_id_++;
  // Pareto with mean m and shape a has scale xm = m (a - 1) / a.
  double xm = config_.mean_flow_packets * (config_.pareto_alpha - 1.0) / config_.pareto_alpha;
  xm = std::max(1.0, xm);
  flow.remaining = static_cast<uint64_t>(std::ceil(rng_.NextPareto(xm, config_.pareto_alpha)));
  flow.next_emit = now;
  active_.push(flow);
}

FlowTrafficGenerator::Item FlowTrafficGenerator::Next() {
  // Admit any flows that arrive before the earliest active packet.
  while (active_.empty() || next_flow_arrival_ <= active_.top().next_emit) {
    StartFlow(next_flow_arrival_);
    next_flow_arrival_ += rng_.NextExponential(1.0 / config_.flow_arrival_rate);
  }
  ActiveFlow flow = active_.top();
  active_.pop();

  Item item;
  item.time = flow.next_emit;
  item.spec.size = sizes_->NextSize(&rng_);
  item.spec.flow = flow.key;
  item.spec.flow_id = flow.flow_id;
  item.spec.flow_seq = flow.seq;

  flow.seq++;
  flow.remaining--;
  if (flow.remaining > 0) {
    flow.next_emit += rng_.NextExponential(1.0 / config_.in_flow_pps);
    active_.push(flow);
  }
  return item;
}

double FlowTrafficGenerator::OfferedBps() const {
  return config_.flow_arrival_rate * config_.mean_flow_packets * sizes_->MeanSize() * 8.0;
}

FlowGenConfig FlowTrafficGenerator::ConfigForRate(double target_bps, double mean_frame_bytes,
                                                  double mean_flow_packets, double in_flow_pps,
                                                  uint64_t seed) {
  FlowGenConfig config;
  config.mean_flow_packets = mean_flow_packets;
  config.in_flow_pps = in_flow_pps;
  config.seed = seed;
  double pps = target_bps / (8.0 * mean_frame_bytes);
  config.flow_arrival_rate = pps / mean_flow_packets;
  return config;
}

FlowChurnGenerator::FlowChurnGenerator(const FlowChurnConfig& config)
    : config_(config), rng_(config.seed) {
  RB_CHECK(config_.target_flows > 0);
  RB_CHECK(config_.zipf_s > 0);
  RB_CHECK(config_.churn_per_packet >= 0 && config_.churn_per_packet <= 1);
  active_.reserve(config_.target_flows);
}

FlowKey FlowChurnGenerator::KeyFor(uint64_t flow_id) {
  // splitmix64-style finalizer: ~96 bits of key entropy, so a million
  // ids give distinct 5-tuples with overwhelming probability.
  uint64_t h = (flow_id + 1) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  uint64_t h2 = h * 0xbf58476d1ce4e5b9ull;
  h2 ^= h2 >> 29;
  FlowKey key;
  key.src_ip = static_cast<uint32_t>(h);
  key.dst_ip = static_cast<uint32_t>(h >> 32);
  key.src_port = static_cast<uint16_t>(1024 + h2 % 60000);
  key.dst_port = static_cast<uint16_t>(1024 + (h2 >> 24) % 60000);
  key.protocol = Ipv4View::kProtoTcp;
  return key;
}

uint64_t FlowChurnGenerator::PickActive() {
  // Continuous inverse-CDF approximation of Zipf over ranks [1, n]:
  // P(rank <= r) ~ (r^(1-s) - 1) / (n^(1-s) - 1). Earlier slots are
  // hotter; churn replaces a dead flow in place, so a replacement
  // inherits its predecessor's rank and elephants stay elephants.
  const double n = static_cast<double>(active_.size());
  const double s = config_.zipf_s;
  const double u = rng_.NextDouble();
  double rank;
  if (s > 0.999 && s < 1.001) {
    rank = std::pow(n, u);  // s -> 1 limit: CDF ~ ln r / ln n
  } else {
    const double t = std::pow(n, 1.0 - s);
    rank = std::pow((t - 1.0) * u + 1.0, 1.0 / (1.0 - s));
  }
  if (rank < 1.0) {
    rank = 1.0;
  }
  uint64_t idx = static_cast<uint64_t>(rank) - 1;
  if (idx >= active_.size()) {
    idx = active_.size() - 1;
  }
  return idx;
}

FlowChurnGenerator::Item FlowChurnGenerator::Next() {
  uint64_t idx;
  if (active_.size() < config_.target_flows) {
    // Ramp: every call births one flow and emits its first packet, so
    // the population reaches target_flows after target_flows packets.
    idx = active_.size();
    active_.push_back(next_flow_id_++);
    births_++;
  } else {
    if (config_.churn_per_packet > 0 && rng_.NextBool(config_.churn_per_packet)) {
      const uint64_t dead = rng_.NextBounded(active_.size());
      active_[dead] = next_flow_id_++;
      deaths_++;
      births_++;
    }
    idx = PickActive();
  }
  Item item;
  item.flow_id = active_[idx];
  item.key = KeyFor(item.flow_id);
  return item;
}

}  // namespace rb
