#include "workload/flows.hpp"

#include <cmath>

#include "common/log.hpp"
#include "packet/headers.hpp"

namespace rb {

FlowTrafficGenerator::FlowTrafficGenerator(const FlowGenConfig& config,
                                           std::unique_ptr<SizeDistribution> sizes)
    : config_(config), sizes_(std::move(sizes)), rng_(config.seed) {
  RB_CHECK(config_.flow_arrival_rate > 0);
  RB_CHECK(config_.mean_flow_packets >= 1);
  RB_CHECK(config_.in_flow_pps > 0);
  RB_CHECK(sizes_ != nullptr);
  next_flow_arrival_ = rng_.NextExponential(1.0 / config_.flow_arrival_rate);
}

void FlowTrafficGenerator::StartFlow(SimTime now) {
  ActiveFlow flow;
  flow.key.src_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
  flow.key.dst_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
  flow.key.src_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
  flow.key.dst_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
  flow.key.protocol = Ipv4View::kProtoTcp;
  flow.flow_id = next_flow_id_++;
  // Pareto with mean m and shape a has scale xm = m (a - 1) / a.
  double xm = config_.mean_flow_packets * (config_.pareto_alpha - 1.0) / config_.pareto_alpha;
  xm = std::max(1.0, xm);
  flow.remaining = static_cast<uint64_t>(std::ceil(rng_.NextPareto(xm, config_.pareto_alpha)));
  flow.next_emit = now;
  active_.push(flow);
}

FlowTrafficGenerator::Item FlowTrafficGenerator::Next() {
  // Admit any flows that arrive before the earliest active packet.
  while (active_.empty() || next_flow_arrival_ <= active_.top().next_emit) {
    StartFlow(next_flow_arrival_);
    next_flow_arrival_ += rng_.NextExponential(1.0 / config_.flow_arrival_rate);
  }
  ActiveFlow flow = active_.top();
  active_.pop();

  Item item;
  item.time = flow.next_emit;
  item.spec.size = sizes_->NextSize(&rng_);
  item.spec.flow = flow.key;
  item.spec.flow_id = flow.flow_id;
  item.spec.flow_seq = flow.seq;

  flow.seq++;
  flow.remaining--;
  if (flow.remaining > 0) {
    flow.next_emit += rng_.NextExponential(1.0 / config_.in_flow_pps);
    active_.push(flow);
  }
  return item;
}

double FlowTrafficGenerator::OfferedBps() const {
  return config_.flow_arrival_rate * config_.mean_flow_packets * sizes_->MeanSize() * 8.0;
}

FlowGenConfig FlowTrafficGenerator::ConfigForRate(double target_bps, double mean_frame_bytes,
                                                  double mean_flow_packets, double in_flow_pps,
                                                  uint64_t seed) {
  FlowGenConfig config;
  config.mean_flow_packets = mean_flow_packets;
  config.in_flow_pps = in_flow_pps;
  config.seed = seed;
  double pps = target_bps / (8.0 * mean_frame_bytes);
  config.flow_arrival_rate = pps / mean_flow_packets;
  return config;
}

}  // namespace rb
