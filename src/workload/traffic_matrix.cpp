#include "workload/traffic_matrix.hpp"

#include "common/log.hpp"

namespace rb {

TrafficMatrix::TrafficMatrix(uint16_t n) : n_(n), shares_(n, std::vector<double>(n, 0.0)) {
  RB_CHECK(n >= 1);
}

TrafficMatrix TrafficMatrix::Uniform(uint16_t n) {
  TrafficMatrix tm(n);
  for (uint16_t i = 0; i < n; ++i) {
    for (uint16_t j = 0; j < n; ++j) {
      tm.shares_[i][j] = 1.0 / n;
    }
  }
  return tm;
}

TrafficMatrix TrafficMatrix::SinglePair(uint16_t n, uint16_t src, uint16_t dst) {
  TrafficMatrix tm(n);
  RB_CHECK(src < n && dst < n);
  tm.shares_[src][dst] = 1.0;
  return tm;
}

TrafficMatrix TrafficMatrix::Hotspot(uint16_t n, uint16_t hot_dst, double hot_fraction) {
  TrafficMatrix tm(n);
  RB_CHECK(hot_dst < n);
  RB_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  for (uint16_t i = 0; i < n; ++i) {
    double rest = n > 1 ? (1.0 - hot_fraction) / (n - 1) : 0.0;
    for (uint16_t j = 0; j < n; ++j) {
      tm.shares_[i][j] = (j == hot_dst) ? hot_fraction : rest;
    }
  }
  return tm;
}

TrafficMatrix TrafficMatrix::SingleInputWeighted(uint16_t n, uint16_t src,
                                                 const std::vector<double>& weights) {
  TrafficMatrix tm(n);
  RB_CHECK(src < n);
  RB_CHECK(weights.size() == n);
  double sum = 0;
  for (double w : weights) {
    RB_CHECK(w >= 0);
    sum += w;
  }
  RB_CHECK(sum > 0);
  for (uint16_t j = 0; j < n; ++j) {
    tm.shares_[src][j] = weights[j] / sum;
  }
  return tm;
}

bool TrafficMatrix::InputActive(uint16_t src) const {
  for (double s : shares_[src]) {
    if (s > 0) {
      return true;
    }
  }
  return false;
}

uint16_t TrafficMatrix::SampleOutput(uint16_t src, Rng* rng) const {
  double r = rng->NextDouble();
  double acc = 0;
  for (uint16_t j = 0; j < n_; ++j) {
    acc += shares_[src][j];
    if (r < acc) {
      return j;
    }
  }
  // Row may not sum exactly to 1 due to floating point; return the last
  // destination with positive share.
  for (uint16_t j = n_; j-- > 0;) {
    if (shares_[src][j] > 0) {
      return j;
    }
  }
  return 0;
}

}  // namespace rb
