#include "workload/synthetic.hpp"

#include "common/log.hpp"
#include "packet/headers.hpp"

namespace rb {

const char* AppName(App app) {
  switch (app) {
    case App::kMinimalForwarding:
      return "forwarding";
    case App::kIpRouting:
      return "routing";
    case App::kIpsec:
      return "ipsec";
  }
  return "?";
}

void MaterializeFrame(const FrameSpec& spec, Packet* p) {
  constexpr uint32_t kHeaderBytes = EthernetView::kSize + Ipv4View::kMinSize + UdpView::kSize;
  RB_CHECK(spec.size >= kHeaderBytes);
  RB_CHECK(spec.size + Packet::kDefaultHeadroom <= Packet::kMaxCapacity);
  p->SetLength(spec.size);

  // Every header byte is written exactly once below, so only the payload
  // tail past the headers needs zeroing — a 64 B frame zeroes 22 bytes,
  // not 64, and a 1500 B frame skips re-writing the 42 header bytes.
  memset(p->data() + kHeaderBytes, 0, spec.size - kHeaderBytes);

  EthernetView eth{p->data()};
  eth.set_dst(MacAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x01});
  eth.set_src(MacAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x02});
  eth.set_ether_type(EthernetView::kTypeIpv4);

  uint16_t ip_total = static_cast<uint16_t>(spec.size - EthernetView::kSize);
  Ipv4View::WriteDefault(p->data() + EthernetView::kSize, spec.flow.src_ip, spec.flow.dst_ip,
                         spec.flow.protocol ? spec.flow.protocol : Ipv4View::kProtoUdp, ip_total);

  // The transport header is written UDP-shaped regardless of the flow's
  // protocol annotation (the datagram length field must describe a real
  // UDP payload for the smallest Abilene frames too).
  uint16_t udp_len = static_cast<uint16_t>(ip_total - Ipv4View::kMinSize);
  RB_CHECK_MSG(udp_len >= UdpView::kSize, "frame too small to carry a UDP datagram");
  UdpView udp{p->data() + EthernetView::kSize + Ipv4View::kMinSize};
  udp.set_src_port(spec.flow.src_port);
  udp.set_dst_port(spec.flow.dst_port);
  udp.set_length(udp_len);
  udp.set_checksum(0);

  p->set_flow_id(spec.flow_id);
  p->set_flow_seq(spec.flow_seq);
  p->set_flow_hash(FlowHash32(spec.flow));
}

Packet* AllocFrame(const FrameSpec& spec, PacketPool* pool) {
  Packet* p = pool->Alloc();
  if (p == nullptr) {
    return nullptr;
  }
  MaterializeFrame(spec, p);
  return p;
}

SyntheticGenerator::SyntheticGenerator(const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  RB_CHECK(config.num_flows >= 1);
  flows_.reserve(config_.num_flows);
  for (uint64_t i = 0; i < config_.num_flows; ++i) {
    FlowKey key;
    key.src_ip = static_cast<uint32_t>(rng_.Next());
    key.dst_ip = static_cast<uint32_t>(rng_.Next());
    key.src_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    key.dst_port = static_cast<uint16_t>(1024 + rng_.NextBounded(60000));
    key.protocol = Ipv4View::kProtoUdp;
    flows_.push_back(key);
  }
  flow_seq_.assign(config_.num_flows, 0);
}

FrameSpec SyntheticGenerator::Next() {
  uint64_t idx = rng_.NextBounded(config_.num_flows);
  FrameSpec spec;
  spec.size = config_.packet_size;
  spec.flow = flows_[idx];
  if (config_.random_dst) {
    // Random destination per packet to defeat lookup-cache locality, as in
    // the paper; keep it unicast.
    spec.flow.dst_ip = static_cast<uint32_t>(rng_.Next()) & 0xdfffffffu;
  }
  spec.flow_id = idx;
  spec.flow_seq = flow_seq_[idx]++;
  return spec;
}

}  // namespace rb
