// DIR-24-8-BASIC — the "D-lookup" algorithm of Gupta, Lin and McKeown
// ("Routing Lookups in Hardware at Memory Access Speeds", INFOCOM 1998),
// which is what the Click distribution's IP-routing element uses and what
// the paper's IP-routing application runs (§5.1).
//
// Layout (faithful to the original):
//  * tbl24: 2^24 16-bit entries indexed by the top 24 address bits. The
//    top bit selects the interpretation: 0 -> the remaining 15 bits are a
//    next-hop index; 1 -> they are a segment number in tbl_long.
//  * tbl_long: 256-entry segments of 16-bit next-hop indices, one segment
//    per tbl24 entry covered by any prefix longer than /24.
//
// Lookups therefore cost one memory access for prefixes up to /24 (the
// vast majority in real tables) and two for longer ones.
//
// Extension beyond the original paper: incremental insertion. We keep a
// shadow per-slot prefix-length array so inserts in any order produce the
// same table as a bulk build (longest prefix wins per slot); the property
// tests verify this against the radix trie.
#ifndef RB_LOOKUP_DIR24_8_HPP_
#define RB_LOOKUP_DIR24_8_HPP_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lookup/lpm.hpp"

namespace rb {

class Dir24_8 : public LpmTable {
 public:
  Dir24_8();

  void Insert(uint32_t prefix, uint8_t length, uint32_t next_hop) override;
  uint32_t Lookup(uint32_t addr) const override;
  // Batch lookup with TBL24 prefetch pipelining: random destinations make
  // every tbl24 access a likely cache miss into a 32 MB array, so the line
  // for address i+kPrefetchAhead is requested while address i resolves,
  // overlapping up to kPrefetchAhead misses instead of serializing them.
  void LookupBatch(const uint32_t* addrs, uint32_t* hops, size_t n) const override;
  size_t size() const override { return size_; }
  std::string name() const override { return "Dir24-8"; }

  // Introspection for tests and the memory-footprint report.
  size_t num_long_segments() const { return tbl_long_.size() / kSegmentSize; }
  size_t memory_bytes() const;

 private:
  static constexpr uint16_t kExtendedBit = 0x8000;
  static constexpr size_t kSegmentSize = 256;
  static constexpr uint16_t kMaxNextHops = 0x7fff;
  // Lookup distance covered by software prefetch in LookupBatch: deep
  // enough to overlap a DRAM miss, shallow enough to stay within a burst.
  static constexpr size_t kPrefetchAhead = 8;

  uint16_t InternNextHop(uint32_t next_hop);
  uint32_t ResolveNextHop(uint16_t index) const;
  // Allocates a tbl_long segment seeded from the current tbl24 slot state.
  uint16_t AllocateSegment(uint32_t slot24);

  std::vector<uint16_t> tbl24_;        // 2^24 entries
  std::vector<uint8_t> depth24_;       // shadow: prefix length per slot (0 = none)
  std::vector<uint16_t> tbl_long_;     // segments of 256
  std::vector<uint8_t> depth_long_;    // shadow for tbl_long
  std::vector<uint32_t> next_hops_;    // index -> value; [0] == kNoRoute
  std::unordered_map<uint32_t, uint16_t> next_hop_index_;
  std::unordered_set<uint64_t> routes_;  // (prefix << 8) | length, for size()
  size_t size_ = 0;
};

}  // namespace rb

#endif  // RB_LOOKUP_DIR24_8_HPP_
