#include "lookup/table_gen.hpp"

#include <unordered_set>

#include "common/log.hpp"

namespace rb {

std::vector<std::pair<uint8_t, double>> DefaultPrefixLengthWeights() {
  // Approximate RouteViews global-table shares, late-2008 vintage.
  return {
      {8, 0.1},  {9, 0.1},  {10, 0.2}, {11, 0.3}, {12, 0.5},  {13, 0.9},
      {14, 1.8}, {15, 3.0}, {16, 5.5}, {17, 3.5}, {18, 6.0},  {19, 9.5},
      {20, 9.0}, {21, 8.5}, {22, 10.0}, {23, 8.0}, {24, 53.0}, {25, 0.4},
      {26, 0.4}, {27, 0.3}, {28, 0.2}, {29, 0.2}, {30, 0.1},  {31, 0.02},
      {32, 0.3},
  };
}

std::vector<RouteEntry> GenerateRoutingTable(const TableGenConfig& config) {
  RB_CHECK(config.num_next_hops >= 1);
  Rng rng(config.seed);
  auto weight_pairs = DefaultPrefixLengthWeights();
  std::vector<double> weights;
  weights.reserve(weight_pairs.size());
  for (const auto& [len, w] : weight_pairs) {
    weights.push_back(w);
  }

  std::vector<RouteEntry> routes;
  routes.reserve(config.num_routes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(config.num_routes * 2);

  while (routes.size() < config.num_routes) {
    uint8_t length = weight_pairs[rng.NextWeighted(weights)].first;
    uint32_t prefix = NormalizePrefix(static_cast<uint32_t>(rng.Next()), length);
    // Keep addresses out of multicast/reserved space so generated traffic
    // looks like unicast.
    if ((prefix >> 28) >= 0xe) {
      continue;
    }
    uint64_t key = (static_cast<uint64_t>(prefix) << 8) | length;
    if (!seen.insert(key).second) {
      continue;
    }
    RouteEntry r;
    r.prefix = prefix;
    r.length = length;
    r.next_hop = 1 + static_cast<uint32_t>(rng.NextBounded(config.num_next_hops));
    routes.push_back(r);
  }
  return routes;
}

PrefixSampler::PrefixSampler(const std::vector<RouteEntry>& routes) {
  RB_CHECK_MSG(!routes.empty(), "PrefixSampler needs at least one route");
  prefixes_.reserve(routes.size());
  for (const RouteEntry& r : routes) {
    MaskedPrefix mp;
    mp.prefix = NormalizePrefix(r.prefix, r.length);
    mp.host_mask = r.length >= 32 ? 0 : (r.length == 0 ? 0xffffffffu : (1u << (32 - r.length)) - 1);
    prefixes_.push_back(mp);
  }
}

PrefixSampler::PrefixSampler(const TableGenConfig& config)
    : PrefixSampler(GenerateRoutingTable(config)) {}

uint32_t PrefixSampler::NextDst(Rng* rng) const {
  const MaskedPrefix& mp = prefixes_[rng->NextBounded(prefixes_.size())];
  return mp.prefix | (static_cast<uint32_t>(rng->Next()) & mp.host_mask);
}

}  // namespace rb
