// Reference longest-prefix-match structure: a plain binary (radix) trie.
//
// Slower than DIR-24-8 but trivially correct; property tests cross-check
// DIR-24-8 against it over random tables and random lookups, and the
// lookup microbenchmark uses it as the baseline the paper's D-lookup is
// compared to.
#ifndef RB_LOOKUP_RADIX_TRIE_HPP_
#define RB_LOOKUP_RADIX_TRIE_HPP_

#include <memory>

#include "lookup/lpm.hpp"

namespace rb {

class RadixTrie : public LpmTable {
 public:
  RadixTrie() = default;

  void Insert(uint32_t prefix, uint8_t length, uint32_t next_hop) override;
  uint32_t Lookup(uint32_t addr) const override;
  size_t size() const override { return size_; }
  std::string name() const override { return "RadixTrie"; }

  // Removes a route; returns true if it existed. (Extension beyond the
  // LpmTable interface; DIR-24-8 supports replacement but not deletion.)
  bool Remove(uint32_t prefix, uint8_t length);

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    uint32_t next_hop = kNoRoute;
    bool has_route = false;
  };

  Node root_;
  size_t size_ = 0;
};

}  // namespace rb

#endif  // RB_LOOKUP_RADIX_TRIE_HPP_
