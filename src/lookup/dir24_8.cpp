#include "lookup/dir24_8.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/prefetch.hpp"

namespace rb {

Dir24_8::Dir24_8()
    : tbl24_(1u << 24, 0), depth24_(1u << 24, 0) {
  next_hops_.push_back(kNoRoute);  // index 0 reserved
}

uint16_t Dir24_8::InternNextHop(uint32_t next_hop) {
  if (next_hop == kNoRoute) {
    return 0;
  }
  auto it = next_hop_index_.find(next_hop);
  if (it != next_hop_index_.end()) {
    return it->second;
  }
  RB_CHECK_MSG(next_hops_.size() < kMaxNextHops, "too many distinct next hops for 15-bit index");
  uint16_t idx = static_cast<uint16_t>(next_hops_.size());
  next_hops_.push_back(next_hop);
  next_hop_index_.emplace(next_hop, idx);
  return idx;
}

uint32_t Dir24_8::ResolveNextHop(uint16_t index) const { return next_hops_[index]; }

uint16_t Dir24_8::AllocateSegment(uint32_t slot24) {
  size_t seg = tbl_long_.size() / kSegmentSize;
  RB_CHECK_MSG(seg < kMaxNextHops, "too many tbl_long segments for 15-bit index");
  // Seed the new segment with the slot's current (<= /24) route so that
  // addresses not covered by the longer prefix keep resolving.
  uint16_t seed_hop = tbl24_[slot24];
  uint8_t seed_depth = depth24_[slot24];
  tbl_long_.insert(tbl_long_.end(), kSegmentSize, seed_hop);
  depth_long_.insert(depth_long_.end(), kSegmentSize, seed_depth);
  tbl24_[slot24] = static_cast<uint16_t>(kExtendedBit | seg);
  // depth24_ keeps tracking the best <= /24 prefix covering the slot so
  // that later short-prefix inserts can update segment entries correctly.
  return static_cast<uint16_t>(seg);
}

void Dir24_8::Insert(uint32_t prefix, uint8_t length, uint32_t next_hop) {
  RB_CHECK(length <= 32);
  prefix = NormalizePrefix(prefix, length);
  uint16_t hop_idx = InternNextHop(next_hop);
  uint64_t route_key = (static_cast<uint64_t>(prefix) << 8) | length;
  if (routes_.insert(route_key).second) {
    size_++;
  }

  if (length <= 24) {
    uint32_t first = prefix >> 8;
    uint32_t count = 1u << (24 - length);
    for (uint32_t slot = first; slot < first + count; ++slot) {
      if (tbl24_[slot] & kExtendedBit) {
        // Update the segment's entries whose depth is <= this prefix.
        uint32_t seg = tbl24_[slot] & ~kExtendedBit;
        size_t base = static_cast<size_t>(seg) * kSegmentSize;
        for (size_t i = 0; i < kSegmentSize; ++i) {
          if (depth_long_[base + i] <= length) {
            tbl_long_[base + i] = hop_idx;
            depth_long_[base + i] = length;
          }
        }
        if (depth24_[slot] <= length) {
          depth24_[slot] = length;
        }
      } else if (depth24_[slot] <= length) {
        tbl24_[slot] = hop_idx;
        depth24_[slot] = length;
      }
    }
  } else {
    uint32_t slot = prefix >> 8;
    uint32_t seg;
    if (tbl24_[slot] & kExtendedBit) {
      seg = tbl24_[slot] & ~kExtendedBit;
    } else {
      seg = AllocateSegment(slot);
    }
    size_t base = static_cast<size_t>(seg) * kSegmentSize;
    uint32_t first = prefix & 0xff;
    uint32_t count = 1u << (32 - length);
    for (uint32_t i = first; i < first + count; ++i) {
      if (depth_long_[base + i] <= length) {
        tbl_long_[base + i] = hop_idx;
        depth_long_[base + i] = length;
      }
    }
  }
}

uint32_t Dir24_8::Lookup(uint32_t addr) const {
  uint16_t entry = tbl24_[addr >> 8];
  if (entry & kExtendedBit) {
    uint32_t seg = entry & ~kExtendedBit;
    entry = tbl_long_[static_cast<size_t>(seg) * kSegmentSize + (addr & 0xff)];
  }
  return ResolveNextHop(entry);
}

void Dir24_8::LookupBatch(const uint32_t* addrs, uint32_t* hops, size_t n) const {
  const uint16_t* t24 = tbl24_.data();
  // Prime the pipeline: the first kPrefetchAhead lines are in flight
  // before any resolution starts.
  const size_t lead = std::min(kPrefetchAhead, n);
  for (size_t i = 0; i < lead; ++i) {
    PrefetchForRead(&t24[addrs[i] >> 8]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      PrefetchForRead(&t24[addrs[i + kPrefetchAhead] >> 8]);
    }
    uint16_t entry = t24[addrs[i] >> 8];
    if (entry & kExtendedBit) {
      // The tbl_long second access stays serialized (it depends on the
      // tbl24 load); long prefixes are the rare case by construction.
      uint32_t seg = entry & ~kExtendedBit;
      entry = tbl_long_[static_cast<size_t>(seg) * kSegmentSize + (addrs[i] & 0xff)];
    }
    hops[i] = next_hops_[entry];
  }
}

size_t Dir24_8::memory_bytes() const {
  return tbl24_.size() * sizeof(uint16_t) + tbl_long_.size() * sizeof(uint16_t) +
         next_hops_.size() * sizeof(uint32_t);
}

}  // namespace rb
