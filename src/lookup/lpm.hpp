// Longest-prefix-match interface shared by the lookup structures.
#ifndef RB_LOOKUP_LPM_HPP_
#define RB_LOOKUP_LPM_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace rb {

// A route: prefix/len -> next hop. next_hop 0 is reserved for "no route".
struct RouteEntry {
  uint32_t prefix = 0;   // host order, low bits beyond `length` ignored
  uint8_t length = 0;    // 0..32
  uint32_t next_hop = 0;

  bool operator==(const RouteEntry&) const = default;
};

class LpmTable {
 public:
  virtual ~LpmTable() = default;

  // Inserts (or replaces) a route.
  virtual void Insert(uint32_t prefix, uint8_t length, uint32_t next_hop) = 0;

  // Returns the next hop for `addr`, or kNoRoute when nothing matches.
  virtual uint32_t Lookup(uint32_t addr) const = 0;

  // Resolves a whole burst: hops[i] = Lookup(addrs[i]). The batch form is
  // the data-plane entry point (IpLookup gathers a burst of destinations
  // and resolves them in one virtual call); implementations with random-
  // access tables override it to pipeline software prefetches across the
  // burst (Dir24_8 prefetches the TBL24 lines for packets i+1..i+k while
  // resolving packet i). Default: a plain per-address loop.
  virtual void LookupBatch(const uint32_t* addrs, uint32_t* hops, size_t n) const {
    for (size_t i = 0; i < n; ++i) {
      hops[i] = Lookup(addrs[i]);
    }
  }

  virtual size_t size() const = 0;
  virtual std::string name() const = 0;

  static constexpr uint32_t kNoRoute = 0;

  void InsertAll(const std::vector<RouteEntry>& routes) {
    for (const auto& r : routes) {
      Insert(r.prefix, r.length, r.next_hop);
    }
  }
};

// Normalizes a prefix: zeroes bits beyond `length`.
inline uint32_t NormalizePrefix(uint32_t prefix, uint8_t length) {
  if (length == 0) {
    return 0;
  }
  uint32_t mask = length >= 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1);
  return prefix & mask;
}

}  // namespace rb

#endif  // RB_LOOKUP_LPM_HPP_
