#include "lookup/radix_trie.hpp"

#include "common/log.hpp"

namespace rb {

void RadixTrie::Insert(uint32_t prefix, uint8_t length, uint32_t next_hop) {
  RB_CHECK(length <= 32);
  prefix = NormalizePrefix(prefix, length);
  Node* node = &root_;
  for (uint8_t depth = 0; depth < length; ++depth) {
    int bit = (prefix >> (31 - depth)) & 1;
    if (!node->child[bit]) {
      node->child[bit] = std::make_unique<Node>();
    }
    node = node->child[bit].get();
  }
  if (!node->has_route) {
    size_++;
  }
  node->has_route = true;
  node->next_hop = next_hop;
}

uint32_t RadixTrie::Lookup(uint32_t addr) const {
  const Node* node = &root_;
  uint32_t best = kNoRoute;
  for (uint8_t depth = 0; depth <= 32; ++depth) {
    if (node->has_route) {
      best = node->next_hop;
    }
    if (depth == 32) {
      break;
    }
    int bit = (addr >> (31 - depth)) & 1;
    if (!node->child[bit]) {
      break;
    }
    node = node->child[bit].get();
  }
  return best;
}

bool RadixTrie::Remove(uint32_t prefix, uint8_t length) {
  prefix = NormalizePrefix(prefix, length);
  Node* node = &root_;
  for (uint8_t depth = 0; depth < length; ++depth) {
    int bit = (prefix >> (31 - depth)) & 1;
    if (!node->child[bit]) {
      return false;
    }
    node = node->child[bit].get();
  }
  if (!node->has_route) {
    return false;
  }
  node->has_route = false;
  node->next_hop = kNoRoute;
  size_--;
  return true;
}

}  // namespace rb
