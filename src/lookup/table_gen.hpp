// Synthetic routing-table generation.
//
// The paper uses a 256 K-entry table ("in keeping with recent reports",
// §5.1) with random destination addresses in the traffic so lookups stress
// cache locality. We generate tables with a prefix-length distribution
// modeled on published BGP-table statistics of the period (RouteViews,
// 2008-2009): /24 dominates (~53%), followed by /23..../19, with a thin
// tail of short prefixes and a small fraction (<2%) longer than /24.
#ifndef RB_LOOKUP_TABLE_GEN_HPP_
#define RB_LOOKUP_TABLE_GEN_HPP_

#include <vector>

#include "common/rng.hpp"
#include "lookup/lpm.hpp"

namespace rb {

struct TableGenConfig {
  size_t num_routes = 256 * 1024;
  uint32_t num_next_hops = 16;  // distinct next-hop values (router ports)
  uint64_t seed = 42;
};

// Generates `num_routes` distinct routes. next_hop values are in
// [1, num_next_hops] (0 is reserved for "no route").
std::vector<RouteEntry> GenerateRoutingTable(const TableGenConfig& config);

// The default prefix-length weights (index = prefix length 8..32, as
// pairs). Exposed for tests.
std::vector<std::pair<uint8_t, double>> DefaultPrefixLengthWeights();

}  // namespace rb

#endif  // RB_LOOKUP_TABLE_GEN_HPP_
