// Synthetic routing-table generation.
//
// The paper uses a 256 K-entry table ("in keeping with recent reports",
// §5.1) with random destination addresses in the traffic so lookups stress
// cache locality. We generate tables with a prefix-length distribution
// modeled on published BGP-table statistics of the period (RouteViews,
// 2008-2009): /24 dominates (~53%), followed by /23..../19, with a thin
// tail of short prefixes and a small fraction (<2%) longer than /24.
#ifndef RB_LOOKUP_TABLE_GEN_HPP_
#define RB_LOOKUP_TABLE_GEN_HPP_

#include <vector>

#include "common/rng.hpp"
#include "lookup/lpm.hpp"

namespace rb {

struct TableGenConfig {
  size_t num_routes = 256 * 1024;
  uint32_t num_next_hops = 16;  // distinct next-hop values (router ports)
  uint64_t seed = 42;
};

// Generates `num_routes` distinct routes. next_hop values are in
// [1, num_next_hops] (0 is reserved for "no route").
std::vector<RouteEntry> GenerateRoutingTable(const TableGenConfig& config);

// The default prefix-length weights (index = prefix length 8..32, as
// pairs). Exposed for tests.
std::vector<std::pair<uint8_t, double>> DefaultPrefixLengthWeights();

// Samples destination addresses *covered by an installed prefix set*: a
// uniformly random route, then uniformly random host bits under its
// prefix. Every sampled address is guaranteed to match at least that
// route in any LPM structure built from the same table, so a workload
// generator can produce routable random destinations without consulting
// the lookup structure it is about to stress — the harness-side
// reject-sampling loop (router.table().Lookup() per candidate inside the
// measured inject scope) both misattributed router cycles to the harness
// and pre-warmed the exact cache lines `random_dst` exists to thrash.
class PrefixSampler {
 public:
  // Keeps (prefix, host-bit mask) pairs; `routes` can be discarded after.
  explicit PrefixSampler(const std::vector<RouteEntry>& routes);

  // Convenience: regenerates the table from `config` (same seed => the
  // same routes a router built from `config` installed).
  explicit PrefixSampler(const TableGenConfig& config);

  // A random address covered by a random installed route.
  uint32_t NextDst(Rng* rng) const;

  size_t num_prefixes() const { return prefixes_.size(); }

 private:
  struct MaskedPrefix {
    uint32_t prefix = 0;     // normalized (host bits zero)
    uint32_t host_mask = 0;  // bits free to randomize
  };
  std::vector<MaskedPrefix> prefixes_;
};

}  // namespace rb

#endif  // RB_LOOKUP_TABLE_GEN_HPP_
