#include "telemetry/latency_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace rb {
namespace telemetry {

static_assert(kMaxShards == 16,
              "LatencyHistogram hardcodes the shard count to avoid a header "
              "cycle with metrics.hpp; keep it in sync with kMaxShards");

namespace {
std::atomic<bool> g_stamp_enabled{true};
}  // namespace

void SetIngressStampEnabled(bool on) {
  g_stamp_enabled.store(on, std::memory_order_relaxed);
}
bool IngressStampEnabled() {
  return g_stamp_enabled.load(std::memory_order_relaxed);
}

uint64_t LatencyBuckets::LowerNs(size_t idx) {
  constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
  if (idx < kSubCount) {
    return idx;
  }
  int e = static_cast<int>(idx >> kSubBits) + kSubBits - 1;
  uint64_t sub = idx & (kSubCount - 1);
  return (uint64_t{1} << e) + (sub << (e - kSubBits));
}

uint64_t LatencyBuckets::UpperNs(size_t idx) {
  return idx + 1 < kCount ? LowerNs(idx + 1) : LowerNs(kCount - 1) * 2;
}

LatencyHistogram::LatencyHistogram() {
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(LatencyBuckets::kCount);
    for (size_t b = 0; b < LatencyBuckets::kCount; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  LatencySnapshot snap;
  snap.counts.assign(LatencyBuckets::kCount, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < LatencyBuckets::kCount; ++b) {
      snap.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  // Reconstruct the derived stats from occupancy: exact for unit buckets
  // (values < 2^kSubBits ns), within one ~6% sub-bucket above that.
  bool first = true;
  for (size_t b = 0; b < LatencyBuckets::kCount; ++b) {
    uint64_t c = snap.counts[b];
    if (c == 0) {
      continue;
    }
    uint64_t lo = LatencyBuckets::LowerNs(b);
    uint64_t hi = LatencyBuckets::UpperNs(b);
    snap.count += c;
    snap.sum_ns += static_cast<double>(c) * (static_cast<double>(lo + hi - 1) / 2.0);
    if (first) {
      snap.min_ns = lo;
      first = false;
    }
    snap.max_ns = hi - 1;
  }
  return snap;
}

double LatencySnapshot::PercentileNs(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (seen + counts[i] >= target) {
      double lo = static_cast<double>(LatencyBuckets::LowerNs(i));
      double hi = static_cast<double>(LatencyBuckets::UpperNs(i));
      double frac =
          static_cast<double>(target - seen) / static_cast<double>(counts[i]);
      double v = lo + frac * (hi - lo);
      // Clip to the observed envelope: the bucket edges overstate spread
      // when all of a bucket's samples share one value (min/max are exact).
      return std::clamp(v, static_cast<double>(min_ns), static_cast<double>(max_ns));
    }
    seen += counts[i];
  }
  return static_cast<double>(max_ns);
}

}  // namespace telemetry
}  // namespace rb
