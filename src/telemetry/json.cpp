#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

// --- writer ---

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  RB_CHECK_MSG(!needs_comma_.empty(), "JsonWriter::EndObject with no open scope");
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  RB_CHECK_MSG(!needs_comma_.empty(), "JsonWriter::EndArray with no open scope");
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(const std::string& v) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Uint(uint64_t v) {
  MaybeComma();
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::Int(int64_t v) {
  MaybeComma();
  char buf[32];
  snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::Double(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- parser ---

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::Find(const std::string& k1, const std::string& k2) const {
  const JsonValue* v = Find(k1);
  return v ? v->Find(k2) : nullptr;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      p++;
    }
  }

  bool Fail(const std::string& msg) {
    if (error.empty()) {
      error = msg;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (p >= end) {
      return Fail("unexpected end of input");
    }
    switch (*p) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (end - p >= 4 && strncmp(p, "true", 4) == 0) {
          out->type = JsonValue::Type::kBool;
          out->b = true;
          p += 4;
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (end - p >= 5 && strncmp(p, "false", 5) == 0) {
          out->type = JsonValue::Type::kBool;
          out->b = false;
          p += 5;
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (end - p >= 4 && strncmp(p, "null", 4) == 0) {
          out->type = JsonValue::Type::kNull;
          p += 4;
          return true;
        }
        return Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    p++;  // '{'
    SkipWs();
    if (p < end && *p == '}') {
      p++;
      return true;
    }
    while (true) {
      SkipWs();
      if (p >= end || *p != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (p >= end || *p != ':') {
        return Fail("expected ':'");
      }
      p++;
      JsonValue val;
      if (!ParseValue(&val)) {
        return false;
      }
      out->obj.emplace(std::move(key), std::move(val));
      SkipWs();
      if (p < end && *p == ',') {
        p++;
        continue;
      }
      if (p < end && *p == '}') {
        p++;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    p++;  // '['
    SkipWs();
    if (p < end && *p == ']') {
      p++;
      return true;
    }
    while (true) {
      JsonValue val;
      if (!ParseValue(&val)) {
        return false;
      }
      out->arr.push_back(std::move(val));
      SkipWs();
      if (p < end && *p == ',') {
        p++;
        continue;
      }
      if (p < end && *p == ']') {
        p++;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    p++;  // opening quote
    while (p < end && *p != '"') {
      if (*p == '\\') {
        p++;
        if (p >= end) {
          return Fail("bad escape");
        }
        switch (*p) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end - p < 5) {
              return Fail("bad \\u escape");
            }
            char hex[5] = {p[1], p[2], p[3], p[4], 0};
            long code = strtol(hex, nullptr, 16);
            // ASCII only — sufficient for metric names; others become '?'.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            p += 4;
            break;
          }
          default: return Fail("bad escape");
        }
        p++;
      } else {
        *out += *p++;
      }
    }
    if (p >= end) {
      return Fail("unterminated string");
    }
    p++;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    char* num_end = nullptr;
    double v = strtod(p, &num_end);
    if (num_end == p) {
      return Fail("bad number");
    }
    out->type = JsonValue::Type::kNumber;
    out->num = v;
    p = num_end;
    return true;
  }
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  *out = JsonValue();
  bool ok = parser.ParseValue(out);
  if (ok) {
    parser.SkipWs();
    if (parser.p != parser.end) {
      ok = parser.Fail("trailing characters");
    }
  }
  if (!ok && error != nullptr) {
    *error = parser.error;
  }
  return ok;
}

}  // namespace telemetry
}  // namespace rb
