// Click-style live-introspection handlers (DESIGN.md §13).
//
// A handler is a named read and/or write hook on a running component:
// every Element exports `counts`/`drops`/`config`/`batch_size`, a Queue
// adds `occupancy`/`hi`/`lo`/`aqm`, the scheduler exports watchdog state,
// and write handlers live-tune knobs (CoDel target, watermarks, tracer
// sample rate) while traffic flows. Handler paths follow Click's
// "<element>.<handler>" scheme — the owner is an element name
// ("Queue@4.occupancy") or a component name ("sched.watchdog_stalls",
// "tracer.sample_every", "ctl.stop").
//
// Concurrency contract: registration happens at setup time (single
// threaded); Read/Write/List may then be called from a control thread
// (the control socket) while worker cores run the data path. A handler
// body therefore must only touch state that is safe against concurrent
// hot-path writers — registry metrics, atomics, SPSC ring size probes.
// The registry's own map is mutex-protected, but that mutex is never
// taken by the data path, so a scrape can never stall a worker.
#ifndef RB_TELEMETRY_HANDLER_HPP_
#define RB_TELEMETRY_HANDLER_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rb {
namespace telemetry {

// Outcome of a handler invocation. For reads, `text` is the value; for
// failed calls it is a human-readable error.
struct HandlerResult {
  bool ok = false;
  std::string text;

  static HandlerResult Ok(std::string value = "") { return {true, std::move(value)}; }
  static HandlerResult Error(std::string why) { return {false, std::move(why)}; }
};

class HandlerRegistry {
 public:
  using ReadFn = std::function<std::string()>;
  // Receives the raw value text; returns ok or an error message.
  using WriteFn = std::function<HandlerResult(const std::string& value)>;

  HandlerRegistry() = default;
  HandlerRegistry(const HandlerRegistry&) = delete;
  HandlerRegistry& operator=(const HandlerRegistry&) = delete;

  // Registers "<owner>.<name>". Re-registering the same path replaces the
  // matching direction (so a component can upgrade a read handler to
  // read/write).
  void AddRead(const std::string& path, ReadFn fn);
  void AddWrite(const std::string& path, WriteFn fn);

  // READ <path>: Ok(value), or Error for unknown / write-only paths.
  HandlerResult Read(const std::string& path) const;
  // WRITE <path> <value>: Ok(), or Error for unknown / read-only paths or
  // a rejected value.
  HandlerResult Write(const std::string& path, const std::string& value);

  struct Entry {
    std::string path;
    bool readable = false;
    bool writable = false;
  };
  // All handlers whose path starts with `prefix`, sorted by path.
  std::vector<Entry> List(const std::string& prefix = "") const;

  bool Has(const std::string& path) const;
  size_t size() const;

 private:
  struct Hooks {
    ReadFn read;
    WriteFn write;
  };
  mutable std::mutex mu_;
  std::map<std::string, Hooks> handlers_;
};

// --- write-handler parsing helpers ---
// Strict numeric parsing for write handlers: the whole (whitespace
// trimmed) value must be consumed. Returns false without touching *out on
// malformed input.
bool ParseHandlerU64(const std::string& value, uint64_t* out);
bool ParseHandlerDouble(const std::string& value, double* out);
bool ParseHandlerBool(const std::string& value, bool* out);  // 0/1/true/false/on/off

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_HANDLER_HPP_
