// Chrome/Perfetto trace-event export for sampled packet traces.
//
// Serializes a PathTracer's held traces into the Trace Event JSON format
// (https://ui.perfetto.dev, chrome://tracing): each sampled packet becomes
// one "process" (pid = trace id) and each consecutive hop pair becomes a
// complete "X" event whose duration is the residency at the destination
// hop, with args carrying the queueing-wait / service split. Hop points
// named "thing@N" are placed on track (tid) N so a cluster-DES trace lays
// its ingress / via / egress servers on separate rows of one span tree.
#ifndef RB_TELEMETRY_TRACE_EXPORT_HPP_
#define RB_TELEMETRY_TRACE_EXPORT_HPP_

#include <string>

#include "telemetry/trace.hpp"

namespace rb {
namespace telemetry {

// {"traceEvents": [...], "displayTimeUnit": "ns"}. Timestamps are
// converted from the tracer's seconds to microseconds (the format's unit)
// and rebased so each run starts near t=0. Incomplete traces (dropped
// packets) are exported too — their last span is tagged "drop": true —
// unless `complete_only`.
std::string TraceEventJson(const PathTracer& tracer, bool complete_only = false);

// Writes TraceEventJson to `path`. Returns false (and logs) on I/O error.
bool WriteTraceEventFile(const PathTracer& tracer, const std::string& path);

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_TRACE_EXPORT_HPP_
