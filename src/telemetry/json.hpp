// Minimal JSON support for the telemetry export layer: a streaming writer
// (objects, arrays, escaped strings, numbers) and a small recursive-descent
// parser used by round-trip tests and tools. No third-party dependency.
#ifndef RB_TELEMETRY_JSON_HPP_
#define RB_TELEMETRY_JSON_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rb {
namespace telemetry {

// Streaming writer. Nesting is tracked internally; commas and key quoting
// are emitted automatically. Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("counters"); w.BeginObject(); w.Key("a"); w.Uint(1); w.EndObject();
//   w.EndObject();
//   std::string out = w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& k);
  void String(const std::string& v);
  void Uint(uint64_t v);
  void Int(int64_t v);
  void Double(double v);
  void Bool(bool v);
  void Null();

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void MaybeComma();

  std::string out_;
  std::vector<bool> needs_comma_;  // per open scope
  bool after_key_ = false;
};

// Parsed JSON value (object keys keep insertion-independent map order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Chained lookup convenience: Find("a", "b") == Find("a")->Find("b").
  const JsonValue* Find(const std::string& k1, const std::string& k2) const;

  double NumberOr(double def) const { return is_number() ? num : def; }
};

// Parses `text`; returns false (and fills *error) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error = nullptr);

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_JSON_HPP_
