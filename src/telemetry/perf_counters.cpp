#include "telemetry/perf_counters.hpp"

#include <cerrno>
#include <cstring>

#include "telemetry/profiler.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define RB_HAVE_PERF_EVENT 1
#else
#define RB_HAVE_PERF_EVENT 0
#endif

namespace rb {
namespace telemetry {

#if RB_HAVE_PERF_EVENT

namespace {

// The six events of the group, leader first. Order matters: Stop() maps
// read-buffer slots back to these indices.
enum EventIndex {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranches,
  kBranchMisses,
};

constexpr uint64_t kEventConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS, PERF_COUNT_HW_BRANCH_MISSES,
};

int OpenEvent(uint64_t config, int group_fd) {
  perf_event_attr attr;
  memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // group starts disabled via leader
  attr.exclude_kernel = 1;               // user space only: no privileges needed
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU.
  return static_cast<int>(syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(const PerfCounterConfig& config) {
  for (int i = 0; i < kMaxEvents; ++i) {
    fds_[i] = -1;
    slot_of_event_[i] = -1;
  }
  if (config.force_fallback) {
    error_ = "hardware counters disabled (force_fallback)";
    return;
  }
  leader_fd_ = OpenEvent(kEventConfigs[kCycles], -1);
  if (leader_fd_ < 0) {
    error_ = std::string("perf_event_open unavailable: ") + strerror(errno);
    return;
  }
  fds_[kCycles] = leader_fd_;
  slot_of_event_[kCycles] = 0;
  num_events_ = 1;
  for (int e = kCycles + 1; e < kMaxEvents; ++e) {
    int fd = OpenEvent(kEventConfigs[e], leader_fd_);
    if (fd >= 0) {
      fds_[e] = fd;
      slot_of_event_[e] = num_events_;
      num_events_++;
    }
    // A sibling failing (e.g. no cache events in a VM) is fine: the group
    // simply carries fewer counters.
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int i = 0; i < kMaxEvents; ++i) {
    if (fds_[i] >= 0) {
      close(fds_[i]);
    }
  }
}

void PerfCounterGroup::Start() {
  started_ = true;
  start_cycles_ = ReadCycles();
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
}

PerfSample PerfCounterGroup::Stop() {
  PerfSample sample;
  if (!started_) {
    return sample;
  }
  sample.fallback_cycles = ReadCycles() - start_cycles_;
  started_ = false;
  if (leader_fd_ < 0) {
    return sample;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  // PERF_FORMAT_GROUP layout: { nr, time_enabled, time_running, value[nr] }.
  uint64_t buf[3 + kMaxEvents] = {0};
  ssize_t n = read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) {
    return sample;
  }
  const uint64_t nr = buf[0];
  const uint64_t time_enabled = buf[1];
  const uint64_t time_running = buf[2];
  auto value = [&](int event) -> uint64_t {
    int slot = slot_of_event_[event];
    if (slot < 0 || static_cast<uint64_t>(slot) >= nr) {
      return 0;
    }
    return buf[3 + slot];
  };
  sample.hw = true;
  sample.running_fraction =
      time_enabled > 0 ? static_cast<double>(time_running) / static_cast<double>(time_enabled)
                       : 1.0;
  sample.cycles = value(kCycles);
  sample.instructions = value(kInstructions);
  sample.cache_references = value(kCacheReferences);
  sample.cache_misses = value(kCacheMisses);
  sample.branches = value(kBranches);
  sample.branch_misses = value(kBranchMisses);
  return sample;
}

#else  // !RB_HAVE_PERF_EVENT

PerfCounterGroup::PerfCounterGroup(const PerfCounterConfig& config) {
  for (int i = 0; i < kMaxEvents; ++i) {
    fds_[i] = -1;
    slot_of_event_[i] = -1;
  }
  (void)config;
  error_ = "perf_event_open not supported on this platform";
}

PerfCounterGroup::~PerfCounterGroup() = default;

void PerfCounterGroup::Start() {
  started_ = true;
  start_cycles_ = ReadCycles();
}

PerfSample PerfCounterGroup::Stop() {
  PerfSample sample;
  if (!started_) {
    return sample;
  }
  sample.fallback_cycles = ReadCycles() - start_cycles_;
  started_ = false;
  return sample;
}

#endif  // RB_HAVE_PERF_EVENT

}  // namespace telemetry
}  // namespace rb
