// Live control socket (DESIGN.md §13): a small line-protocol server that
// exposes the handler registry and the metric registry of a running
// router without ever touching the hot path's locks.
//
// Wire protocol — one command per line ("\n" or "\r\n" terminated):
//
//   LIST [prefix]          enumerate handlers ("r|w|rw <path>" per line)
//   READ <path>            read a handler
//   WRITE <path> <value>   write a handler (value = rest of line)
//   QUIT                   close this connection
//   GET /metrics           Prometheus text exposition (HTTP response)
//   GET /metrics.json      full telemetry JSON (HTTP response)
//
// Responses for LIST/READ carry framed payloads:
//   200 DATA <n>\n<exactly n bytes>\n
// WRITE acknowledges with "200 OK"; errors are one line:
//   500 malformed command | 510 no such handler / not readable /
//   not writable | 540 write rejected: <reason>
// GET requests are answered as a complete HTTP/1.0 response and the
// connection closes afterwards, so `curl` and a Prometheus scraper work
// against the same port as the scripted line protocol.
//
// The address argument is either a TCP port on 127.0.0.1 ("0" binds an
// ephemeral port, reported by port()) or a filesystem path for a Unix
// domain socket (anything non-numeric).
//
// Threading: Start() spawns one serving thread multiplexing the listener
// and all client connections with poll(2). Handler reads/writes and
// registry snapshots run on that thread; per-core sharded metrics merge
// on read with relaxed atomics, so workers never block on a scrape.
#ifndef RB_TELEMETRY_CONTROL_SOCKET_HPP_
#define RB_TELEMETRY_CONTROL_SOCKET_HPP_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"

namespace rb {
namespace telemetry {

class ControlSocketServer {
 public:
  // `handlers` may be null (metrics endpoints only). `registry`/`tracer`
  // back GET /metrics and /metrics.json; registry may be null too.
  ControlSocketServer(HandlerRegistry* handlers, const MetricRegistry* registry,
                      const PathTracer* tracer = nullptr);
  ~ControlSocketServer();

  ControlSocketServer(const ControlSocketServer&) = delete;
  ControlSocketServer& operator=(const ControlSocketServer&) = delete;

  // Binds `address` (TCP port number or Unix socket path) and spawns the
  // serving thread. Returns false and fills *error on bind failure.
  bool Start(const std::string& address, std::string* error = nullptr);

  // Stops the serving thread and closes all connections. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound TCP port (ephemeral resolved); 0 for Unix sockets.
  int port() const { return port_; }
  const std::string& address() const { return address_; }

  uint64_t connections_accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t commands_served() const { return commands_.load(std::memory_order_relaxed); }

  // Protocol core, exposed for tests and in-process scripting: executes
  // one command line, returns the full wire response (without doing any
  // socket I/O). *close_after is set for QUIT and HTTP GETs.
  std::string HandleLine(const std::string& line, bool* close_after);

 private:
  struct Client {
    int fd = -1;
    std::string in;   // bytes received, not yet parsed into lines
    std::string out;  // bytes queued to send
    bool close_after_flush = false;
  };

  void ServeLoop();
  void HandleReadable(Client* client);
  bool FlushWrites(Client* client);  // false = connection is dead
  std::string HttpResponse(const std::string& target) const;

  HandlerRegistry* handlers_;
  const MetricRegistry* registry_;
  const PathTracer* tracer_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe to interrupt poll() on Stop
  int port_ = 0;
  std::string address_;
  std::string unix_path_;  // unlinked on Stop when non-empty
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> commands_{0};
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_CONTROL_SOCKET_HPP_
