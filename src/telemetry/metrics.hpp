// The metric registry: named counters, gauges, and histograms with
// per-core *sharded* writer slots.
//
// RouteBricks' scheduling discipline (§4.2: one core per queue, one core
// per packet) means every hot-path metric has exactly one writer per core.
// We exploit that the same way the data path does: a Counter is an array
// of cache-line-aligned per-core slots, each written only by its core with
// relaxed atomics (no RMW contention, no locks, no cache-line ping-pong),
// and summed across slots on read. Readers (the snapshot/export layer, a
// periodic sampler) may run concurrently with writers; all cross-thread
// traffic goes through atomics, so the registry is clean under TSan with
// real ThreadScheduler threads.
//
// Metric creation (GetCounter etc.) takes a mutex and is meant for setup
// time; hot paths cache the returned pointer, which stays valid for the
// registry's lifetime.
#ifndef RB_TELEMETRY_METRICS_HPP_
#define RB_TELEMETRY_METRICS_HPP_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/latency_stats.hpp"

namespace rb {
namespace telemetry {

// Identifies the calling thread's "core" (worker index). Set once by
// ThreadScheduler before entering a worker loop; defaults to 0 for the
// main thread / inline execution.
void SetThisCore(int core);
int ThisCore();

// Global runtime kill switch. When disabled, instrumented components skip
// binding metrics so the hot path pays only a null-pointer test.
void SetEnabled(bool on);
bool Enabled();

// Number of independent writer slots per metric. Core ids beyond this wrap
// (fetch_add keeps wrapped slots correct, just no longer contention-free).
constexpr int kMaxShards = 16;

// Monotonic counter, per-core sharded.
class Counter {
 public:
  void Add(uint64_t n) {
    slots_[static_cast<size_t>(ThisCore()) % kMaxShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  // Sum across slots. Safe concurrently with writers; the result is a
  // consistent-enough monotone snapshot, exact once writers quiesce.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kMaxShards];
};

// Last-value / extremum gauge. A single atomic double: gauges are written
// by samplers (or via UpdateMax from one producer), not per packet.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (high-water marks).
  void UpdateMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Aggregated, immutable view of a sharded histogram, with the same
// percentile semantics as rb::Histogram (interpolate in-range; clipped
// ranks report observed min/max).
struct HistogramSnapshot {
  double lo = 0;
  double hi = 0;
  std::vector<uint64_t> counts;
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  double Percentile(double p) const;  // p in [0, 100]
};

struct HistogramOptions {
  double lo = 0;
  double hi = 1.0;
  size_t buckets = 64;
};

// Fixed-bucket histogram with per-core sharded bucket arrays. Observe() is
// wait-free (relaxed atomic adds on the caller core's shard); Snapshot()
// merges shards.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(const HistogramOptions& opts);

  void Observe(double x);
  HistogramSnapshot Snapshot() const;

  const HistogramOptions& options() const { return opts_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  // [buckets]
    std::atomic<uint64_t> underflow{0};
    std::atomic<uint64_t> overflow{0};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
  };

  HistogramOptions opts_;
  double width_;
  Shard shards_[kMaxShards];
};

// A (time, value) series for simulated-time probes (queue depths, server
// occupancy). Single-writer; not thread-safe — used by the DES, which is
// single-threaded, or sampled behind the scheduler's sampler hook.
struct TimeSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;

  void Record(double t, double v) { points.emplace_back(t, v); }
};

// Fully aggregated registry state, safe to serialize or diff.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;    // sorted by name
  std::vector<std::pair<std::string, double>> gauges;        // sorted by name
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, LatencySnapshot>> latency;  // sorted

  // Convenience lookups for tests; returns 0 / nullptr when absent.
  uint64_t CounterValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  const LatencySnapshot* FindLatency(const std::string& name) const;
  double GaugeValue(const std::string& name) const;  // 0 when absent
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Find-or-create by name. Pointers remain valid for the registry's
  // lifetime. GetHistogram options apply only on first creation.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ShardedHistogram* GetHistogram(const std::string& name, const HistogramOptions& opts);
  // Log-bucketed latency histogram (fixed geometry — no options to apply).
  LatencyHistogram* GetLatencyHistogram(const std::string& name);

  // Snapshot also synthesizes, for every latency histogram with samples,
  // p50/p90/p99/p999 + mean gauges named "<hist>/p50_us" etc. (values in
  // microseconds), so the gauges flow through every existing export path
  // (handler plane, Prometheus exposition, --metrics-out JSON, CSV)
  // without those layers learning a new metric kind.
  RegistrySnapshot Snapshot() const;

  // Process-wide default instance, for binaries that don't want to thread
  // a registry through; tests should prefer their own instance.
  static MetricRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latency_;
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_METRICS_HPP_
