#include "telemetry/handler.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

void HandlerRegistry::AddRead(const std::string& path, ReadFn fn) {
  RB_CHECK_MSG(!path.empty(), "handler path must be non-empty");
  RB_CHECK(fn != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path].read = std::move(fn);
}

void HandlerRegistry::AddWrite(const std::string& path, WriteFn fn) {
  RB_CHECK_MSG(!path.empty(), "handler path must be non-empty");
  RB_CHECK(fn != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path].write = std::move(fn);
}

HandlerResult HandlerRegistry::Read(const std::string& path) const {
  ReadFn fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      return HandlerResult::Error("no such handler: " + path);
    }
    if (it->second.read == nullptr) {
      return HandlerResult::Error("handler is write-only: " + path);
    }
    fn = it->second.read;
  }
  // Invoked outside the registry lock: a slow read handler must not block
  // concurrent List/Write calls.
  return HandlerResult::Ok(fn());
}

HandlerResult HandlerRegistry::Write(const std::string& path, const std::string& value) {
  WriteFn fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      return HandlerResult::Error("no such handler: " + path);
    }
    if (it->second.write == nullptr) {
      return HandlerResult::Error("handler is read-only: " + path);
    }
    fn = it->second.write;
  }
  return fn(value);
}

std::vector<HandlerRegistry::Entry> HandlerRegistry::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(handlers_.size());
  for (const auto& [path, hooks] : handlers_) {
    if (path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    out.push_back({path, hooks.read != nullptr, hooks.write != nullptr});
  }
  return out;
}

bool HandlerRegistry::Has(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return handlers_.count(path) != 0;
}

size_t HandlerRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handlers_.size();
}

namespace {
std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    b++;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    e--;
  }
  return s.substr(b, e - b);
}
}  // namespace

bool ParseHandlerU64(const std::string& value, uint64_t* out) {
  const std::string t = Trim(value);
  if (t.empty() || t[0] == '-') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(t.c_str(), &end, 10);
  if (errno != 0 || end != t.c_str() + t.size()) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseHandlerDouble(const std::string& value, double* out) {
  const std::string t = Trim(value);
  if (t.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseHandlerBool(const std::string& value, bool* out) {
  std::string t = Trim(value);
  for (char& c : t) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (t == "1" || t == "true" || t == "on") {
    *out = true;
    return true;
  }
  if (t == "0" || t == "false" || t == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace telemetry
}  // namespace rb
