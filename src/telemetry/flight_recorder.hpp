// Flight recorder: an always-on, per-core black box of recent data-plane
// events (DESIGN.md §13).
//
// The chaos-soak and watchdog experience from PR 5 showed the missing
// piece for triage: when a nightly run trips an invariant or a task
// stalls, the counters say *how many* drops/blocks happened but not *what
// happened last*. The flight recorder keeps the last N events per core in
// lock-free rings so that a watchdog stall, a fatal RB_CHECK, or an
// explicit `fr.dump` handler read can produce an ordered tail of recent
// history: drops (with element), blocked/unblocked queue edges, CoDel
// drops, failover reroutes, admission rejects, watchdog stamps.
//
// Cost contract: when no recorder is installed, a record site is one
// relaxed atomic load + branch. When installed, a record is one relaxed
// fetch_add plus five relaxed/release stores into this core's ring
// (~tens of cycles) — cheap enough to leave on in production benches; the
// instrumented events are rare (drop/edge events, not per packet).
//
// Concurrency: each core writes its own ring (cores beyond kMaxShards
// wrap, like metric counters — then the fetch_add keeps slots disjoint).
// Dump() may run concurrently with writers: every slot is published
// seqlock-style (sequence word stored last, release), and the reader
// discards slots whose sequence doesn't match the claimed generation —
// a torn slot near the write head is dropped, never misreported.
#ifndef RB_TELEMETRY_FLIGHT_RECORDER_HPP_
#define RB_TELEMETRY_FLIGHT_RECORDER_HPP_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "telemetry/metrics.hpp"

namespace rb {
namespace telemetry {

enum class FrEvent : uint32_t {
  kDrop = 1,           // element dropped packets; a = count
  kAqmDrop = 2,        // CoDel drop; a = sojourn us, b = drop count this episode
  kBlocked = 3,        // queue crossed hi watermark; a = occupancy
  kUnblocked = 4,      // queue drained to lo watermark; a = occupancy
  kThrottled = 5,      // poller entered throttled state (downstream blocked)
  kFailover = 6,       // VLB rerouted around a believed-dead node; a=(src<<16)|dst, b=via
  kAdmissionDrop = 7,  // fair-admission reject at ingress; a = dst port, b = bytes
  kWatchdogStamp = 8,  // watchdog scan completed; a = stalled tasks
  kWatchdogStall = 9,  // task entered stalled state; a = stall seconds (x1e3)
  kCheckFail = 10,     // fatal RB_CHECK fired (recorded by the dump hook)
  kRxOverflow = 11,    // NIC rx ring had no free descriptors; a = port, b = count
  kUser = 12,          // free-form (tests, tools)
};

const char* FrEventName(FrEvent e);

class FlightRecorder {
 public:
  // `events_per_core` is rounded up to a power of two (default 1024 ≈
  // 40 KiB/core).
  explicit FlightRecorder(size_t events_per_core = 1024);

  // Records one event on the calling core's ring. `where` is an interned
  // scope id (telemetry::InternScopeName) naming the source element or
  // component; kInvalidScope is allowed.
  void Record(FrEvent type, uint32_t where, uint64_t a = 0, uint64_t b = 0);

  // Text dump: per core, oldest-to-newest surviving events, one per line:
  //   core=<c> seq=<s> t=<seconds> <event> where=<name> a=<a> b=<b>
  // Safe concurrently with writers (torn slots are skipped).
  std::string Dump(size_t max_per_core = SIZE_MAX) const;
  void DumpTo(std::FILE* f, size_t max_per_core = SIZE_MAX) const;
  bool DumpToFile(const std::string& path, size_t max_per_core = SIZE_MAX) const;

  // Total events ever recorded (across cores; rings keep only the tail).
  uint64_t recorded() const;
  size_t events_per_core() const { return mask_ + 1; }

  // --- process-global installation (mirrors SetProfiler) ---
  // Install also arms the RB_CHECK failure hook: a fatal check dumps the
  // recorder to stderr (and to the path set with SetCrashDumpPath) before
  // aborting. Install(nullptr) disarms.
  static void Install(FlightRecorder* fr);
  static FlightRecorder* Installed();

  // Where crash-triggered dumps (fatal RB_CHECK) land, in addition to
  // stderr. Empty disables the file copy. Process-global.
  static void SetCrashDumpPath(const std::string& path);

 private:
  struct Slot {
    // Seqlock per slot: `seq` holds 1 + the fetch_add ticket, stored with
    // release order after the payload; 0 = never written. The reader
    // recomputes the expected ticket from the slot index and generation
    // and discards mismatches.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> time_bits{0};  // bit_cast'ed NowSeconds()
    std::atomic<uint64_t> type_where{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  struct Ring {
    std::unique_ptr<Slot[]> slots;
    alignas(64) std::atomic<uint64_t> head{0};  // next ticket
  };

  size_t mask_ = 0;
  Ring rings_[kMaxShards];
};

// Hot-path record helper: one relaxed load when no recorder is installed.
inline void FrRecord(FrEvent type, uint32_t where, uint64_t a = 0, uint64_t b = 0) {
  FlightRecorder* fr = FlightRecorder::Installed();
  if (fr != nullptr) {
    fr->Record(type, where, a, b);
  }
}

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_FLIGHT_RECORDER_HPP_
