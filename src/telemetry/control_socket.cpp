#include "telemetry/control_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace rb {
namespace telemetry {

namespace {

bool IsNumericAddress(const std::string& address) {
  if (address.empty()) {
    return false;
  }
  for (char c : address) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

std::string Framed(const std::string& payload) {
  return Format("200 DATA %zu\n", payload.size()) + payload + "\n";
}

// Splits "VERB rest" on the first run of whitespace.
void SplitVerb(const std::string& line, std::string* verb, std::string* rest) {
  size_t i = 0;
  while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) {
    i++;
  }
  *verb = line.substr(0, i);
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    i++;
  }
  *rest = line.substr(i);
  for (char& c : *verb) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
}

}  // namespace

ControlSocketServer::ControlSocketServer(HandlerRegistry* handlers, const MetricRegistry* registry,
                                         const PathTracer* tracer)
    : handlers_(handlers), registry_(registry), tracer_(tracer) {}

ControlSocketServer::~ControlSocketServer() { Stop(); }

bool ControlSocketServer::Start(const std::string& address, std::string* error) {
  RB_CHECK_MSG(!running_.load(), "control socket already running");
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (IsNumericAddress(address)) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return fail("socket");
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(std::stoul(address)));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind 127.0.0.1:" + address);
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    address_ = "127.0.0.1:" + Format("%d", port_);
  } else {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return fail("socket");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (address.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) {
        *error = "unix socket path too long: " + address;
      }
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    std::strncpy(addr.sun_path, address.c_str(), sizeof(addr.sun_path) - 1);
    unlink(address.c_str());  // stale socket from a previous run
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind " + address);
    }
    unix_path_ = address;
    address_ = address;
  }
  if (listen(listen_fd_, 8) != 0) {
    return fail("listen");
  }
  SetNonBlocking(listen_fd_);
  if (pipe(wake_fds_) != 0) {
    return fail("pipe");
  }
  SetNonBlocking(wake_fds_[0]);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void ControlSocketServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  // Wake the poll loop so it observes running_ == false promptly.
  if (wake_fds_[1] >= 0) {
    char b = 1;
    ssize_t ignored = write(wake_fds_[1], &b, 1);
    (void)ignored;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) {
      close(wake_fds_[i]);
      wake_fds_[i] = -1;
    }
  }
  if (!unix_path_.empty()) {
    unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

std::string ControlSocketServer::HttpResponse(const std::string& target) const {
  std::string body;
  std::string content_type;
  if (target == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = registry_ != nullptr ? PrometheusText(registry_->Snapshot()) : "";
  } else if (target == "/metrics.json") {
    content_type = "application/json";
    ExportBundle bundle;
    bundle.registry = registry_;
    bundle.tracer = tracer_;
    body = ToJson(bundle);
    body += "\n";
  } else {
    body = "not found: " + target + "\n";
    return "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: " +
           Format("%zu", body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  }
  return "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + Format("%zu", body.size()) + "\r\nConnection: close\r\n\r\n" +
         body;
}

std::string ControlSocketServer::HandleLine(const std::string& line, bool* close_after) {
  *close_after = false;
  commands_.fetch_add(1, std::memory_order_relaxed);
  std::string verb;
  std::string rest;
  SplitVerb(line, &verb, &rest);
  if (verb.empty()) {
    return "";  // blank line (e.g. trailing HTTP header terminator) — ignore
  }
  if (verb == "GET") {
    // HTTP compatibility: answer the request target and close; any header
    // lines the client is still sending die with the connection.
    std::string target = rest.substr(0, rest.find(' '));
    *close_after = true;
    return HttpResponse(target);
  }
  if (verb == "QUIT") {
    *close_after = true;
    return "200 bye\n";
  }
  if (verb == "LIST") {
    if (handlers_ == nullptr) {
      return "510 no handlers registered\n";
    }
    std::string payload;
    for (const HandlerRegistry::Entry& e : handlers_->List(rest)) {
      payload += (e.readable && e.writable ? "rw " : (e.writable ? "w  " : "r  ")) + e.path + "\n";
    }
    return Framed(payload);
  }
  if (verb == "READ") {
    if (handlers_ == nullptr) {
      return "510 no handlers registered\n";
    }
    if (rest.empty()) {
      return "500 malformed command: READ <path>\n";
    }
    HandlerResult r = handlers_->Read(rest);
    if (!r.ok) {
      return "510 " + r.text + "\n";
    }
    return Framed(r.text);
  }
  if (verb == "WRITE") {
    if (handlers_ == nullptr) {
      return "510 no handlers registered\n";
    }
    // Split "path value..." by hand (case-preserving): the value is the
    // rest of the line, so written text may itself contain spaces.
    size_t sp = rest.find_first_of(" \t");
    std::string path = rest.substr(0, sp);
    std::string value;
    if (sp != std::string::npos) {
      size_t vstart = rest.find_first_not_of(" \t", sp);
      value = vstart == std::string::npos ? "" : rest.substr(vstart);
    }
    if (path.empty()) {
      return "500 malformed command: WRITE <path> <value>\n";
    }
    HandlerResult r = handlers_->Write(path, value);
    if (!r.ok) {
      if (r.text.rfind("no such handler", 0) == 0 || r.text.rfind("handler is", 0) == 0) {
        return "510 " + r.text + "\n";
      }
      return "540 write rejected: " + r.text + "\n";
    }
    return "200 OK\n";
  }
  return "500 unknown command: " + verb + "\n";
}

void ControlSocketServer::HandleReadable(Client* client) {
  char buf[4096];
  for (;;) {
    ssize_t n = recv(client->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      client->in.append(buf, static_cast<size_t>(n));
      if (client->in.size() > (1u << 20)) {
        client->close_after_flush = true;  // runaway client
        return;
      }
      continue;
    }
    if (n == 0) {
      client->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    client->close_after_flush = true;
    break;
  }
  size_t nl;
  while (!client->close_after_flush && (nl = client->in.find('\n')) != std::string::npos) {
    std::string line = client->in.substr(0, nl);
    client->in.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    bool close_after = false;
    client->out += HandleLine(line, &close_after);
    if (close_after) {
      client->close_after_flush = true;
    }
  }
}

bool ControlSocketServer::FlushWrites(Client* client) {
  while (!client->out.empty()) {
    ssize_t n = send(client->fd, client->out.data(), client->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      client->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // poll will tell us when writable again
    }
    return false;
  }
  return !client->close_after_flush;
}

void ControlSocketServer::ServeLoop() {
  std::vector<Client> clients;
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Client& c : clients) {
      short events = POLLIN;
      if (!c.out.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({c.fd, events, 0});
    }
    int rc = poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (!running_.load(std::memory_order_acquire)) {
      break;
    }
    if (rc <= 0) {
      continue;
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        SetNonBlocking(fd);
        Client c;
        c.fd = fd;
        clients.push_back(std::move(c));
        accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Only walk the clients that were present when fds was built —
    // just-accepted ones have no pollfd yet and get service next loop.
    const size_t polled = fds.size() - 2;
    for (size_t i = 0; i < polled && i < clients.size();) {
      Client& c = clients[i];
      // Find this client's pollfd (offset by listener + wake pipe).
      const pollfd& pf = fds[2 + i];
      bool alive = true;
      if (pf.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Drain what we can, then drop below.
        c.close_after_flush = true;
      }
      if (pf.revents & POLLIN) {
        HandleReadable(&c);
      }
      alive = FlushWrites(&c) && !(c.out.empty() && c.close_after_flush);
      if (!alive) {
        close(c.fd);
        clients.erase(clients.begin() + static_cast<long>(i));
        // fds no longer lines up past this point; re-poll rather than
        // risk pairing the wrong revents with a shifted client.
        break;
      }
      ++i;
    }
  }
  for (Client& c : clients) {
    close(c.fd);
  }
}

}  // namespace telemetry
}  // namespace rb
