// Bottleneck attribution: combines a *measured* per-packet profile (the
// cycle-accounting profiler's cycles/packet, plus the model's per-packet
// bus loads) with a model::ServerSpec's empirical capacity bounds to emit
// the paper's CPU / memory / NIC verdict (§4.3, §5.3: "the achievable
// rate is the minimum over components; the arg-min is the bottleneck").
#ifndef RB_TELEMETRY_BOTTLENECK_HPP_
#define RB_TELEMETRY_BOTTLENECK_HPP_

#include <string>
#include <vector>

#include "model/server_spec.hpp"
#include "model/throughput.hpp"

namespace rb {
namespace telemetry {

// A workload as measured (or partially measured): cycles_per_packet from
// the profiler, bus loads usually from model::LoadsFor for the matching
// application/frame size (we cannot measure bus bytes without the vendor
// tools the paper used).
struct MeasuredWorkload {
  std::string name;
  double frame_bytes = 64;
  double cycles_per_packet = 0;
  ComponentLoads per_packet;  // cpu_cycles ignored; cycles_per_packet wins
};

enum class Resource {
  kCpu,
  kMemory,
  kIo,
  kPcie,
  kInterSocket,
  kNicInput,
};

// Short resource name, e.g. "cpu", "memory", "pcie".
const char* ResourceName(Resource r);
// The paper's three-way verdict class: "CPU", "memory", or "NIC/IO".
const char* ResourceClass(Resource r);

struct ResourceLimit {
  Resource resource = Resource::kCpu;
  double per_packet = 0;        // cycles/packet or bytes/packet
  double capacity_per_sec = 0;  // cycles/s or bytes/s
  double max_pps = 0;           // capacity / per_packet

  double UtilizationAt(double pps) const {
    return capacity_per_sec > 0 ? pps * per_packet / capacity_per_sec : 0;
  }
};

struct BottleneckVerdict {
  std::vector<ResourceLimit> limits;  // sorted by max_pps ascending
  Resource bottleneck = Resource::kCpu;
  std::string verdict;  // ResourceClass(bottleneck)
  double max_pps = 0;
  double max_payload_gbps = 0;  // frame_bytes * 8 * max_pps / 1e9

  const ResourceLimit* Limit(Resource r) const;
  // e.g. "CPU-bound at 2.41 Mpps (cpu: 9300 cyc/pkt vs 22.4 Gcyc/s)"
  std::string Summary() const;
};

// Analyzes `w` against `spec`'s empirical capacities. Resources with zero
// per-packet load or zero capacity are skipped (e.g. inter-socket traffic
// on a single-socket spec).
BottleneckVerdict AnalyzeBottleneck(const MeasuredWorkload& w, const ServerSpec& spec);

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_BOTTLENECK_HPP_
