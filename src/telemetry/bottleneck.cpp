#include "telemetry/bottleneck.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace rb {
namespace telemetry {

const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kCpu: return "cpu";
    case Resource::kMemory: return "memory";
    case Resource::kIo: return "io";
    case Resource::kPcie: return "pcie";
    case Resource::kInterSocket: return "inter_socket";
    case Resource::kNicInput: return "nic_input";
  }
  return "?";
}

const char* ResourceClass(Resource r) {
  switch (r) {
    case Resource::kCpu: return "CPU";
    case Resource::kMemory: return "memory";
    case Resource::kIo:
    case Resource::kPcie:
    case Resource::kInterSocket:
    case Resource::kNicInput: return "NIC/IO";
  }
  return "?";
}

const ResourceLimit* BottleneckVerdict::Limit(Resource r) const {
  for (const ResourceLimit& l : limits) {
    if (l.resource == r) {
      return &l;
    }
  }
  return nullptr;
}

std::string BottleneckVerdict::Summary() const {
  const ResourceLimit* l = Limit(bottleneck);
  if (l == nullptr) {
    return "no measurable load";
  }
  return Format("%s-bound at %.2f Mpps (%s: %.0f %s/pkt vs %.3g/s)", verdict.c_str(),
                max_pps / 1e6, ResourceName(bottleneck), l->per_packet,
                bottleneck == Resource::kCpu ? "cyc" : "B", l->capacity_per_sec);
}

BottleneckVerdict AnalyzeBottleneck(const MeasuredWorkload& w, const ServerSpec& spec) {
  BottleneckVerdict v;
  auto add = [&](Resource r, double per_packet, double capacity_per_sec) {
    if (per_packet <= 0 || capacity_per_sec <= 0) {
      return;
    }
    ResourceLimit limit;
    limit.resource = r;
    limit.per_packet = per_packet;
    limit.capacity_per_sec = capacity_per_sec;
    limit.max_pps = capacity_per_sec / per_packet;
    v.limits.push_back(limit);
  };

  add(Resource::kCpu, w.cycles_per_packet, spec.total_cycles_per_sec());
  add(Resource::kMemory, w.per_packet.memory_bytes, spec.memory.empirical_bps / 8.0);
  add(Resource::kIo, w.per_packet.io_bytes, spec.io.empirical_bps / 8.0);
  add(Resource::kPcie, w.per_packet.pcie_bytes, spec.pcie.empirical_bps / 8.0);
  add(Resource::kInterSocket, w.per_packet.inter_socket_bytes,
      spec.inter_socket.empirical_bps / 8.0);
  add(Resource::kNicInput, w.frame_bytes, spec.max_input_bps() / 8.0);

  std::sort(v.limits.begin(), v.limits.end(),
            [](const ResourceLimit& a, const ResourceLimit& b) { return a.max_pps < b.max_pps; });
  if (!v.limits.empty()) {
    v.bottleneck = v.limits.front().resource;
    v.max_pps = v.limits.front().max_pps;
    v.max_payload_gbps = v.max_pps * w.frame_bytes * 8.0 / 1e9;
  }
  v.verdict = ResourceClass(v.bottleneck);
  return v;
}

}  // namespace telemetry
}  // namespace rb
