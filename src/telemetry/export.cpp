#include "telemetry/export.hpp"

#include <cstdio>

#include "telemetry/json.hpp"

namespace rb {
namespace telemetry {

namespace {

void WriteHistogram(JsonWriter* w, const HistogramSnapshot& h) {
  w->BeginObject();
  w->Key("lo");
  w->Double(h.lo);
  w->Key("hi");
  w->Double(h.hi);
  w->Key("count");
  w->Uint(h.count);
  w->Key("underflow");
  w->Uint(h.underflow);
  w->Key("overflow");
  w->Uint(h.overflow);
  w->Key("mean");
  w->Double(h.mean());
  w->Key("min");
  w->Double(h.min);
  w->Key("max");
  w->Double(h.max);
  w->Key("p50");
  w->Double(h.Percentile(50));
  w->Key("p95");
  w->Double(h.Percentile(95));
  w->Key("p99");
  w->Double(h.Percentile(99));
  w->Key("counts");
  w->BeginArray();
  for (uint64_t c : h.counts) {
    w->Uint(c);
  }
  w->EndArray();
  // Cumulative counts with Prometheus `_bucket` semantics: cum[i] is the
  // number of observations <= the bucket's upper edge, so underflow
  // (observations below `lo`) is folded into every bucket and the +Inf
  // bucket equals `count` (cum.back() + overflow) — consumers can emit
  // exposition-format histograms without re-deriving the prefix sum.
  w->Key("cum_counts");
  w->BeginArray();
  uint64_t cum = h.underflow;
  for (uint64_t c : h.counts) {
    cum += c;
    w->Uint(cum);
  }
  w->EndArray();
  w->EndObject();
}

void WriteLatency(JsonWriter* w, const LatencySnapshot& h) {
  w->BeginObject();
  w->Key("count");
  w->Uint(h.count);
  w->Key("mean_us");
  w->Double(h.mean_ns() / 1e3);
  w->Key("min_us");
  w->Double(static_cast<double>(h.min_ns) / 1e3);
  w->Key("max_us");
  w->Double(static_cast<double>(h.max_ns) / 1e3);
  w->Key("p50_us");
  w->Double(h.PercentileNs(50) / 1e3);
  w->Key("p90_us");
  w->Double(h.PercentileNs(90) / 1e3);
  w->Key("p99_us");
  w->Double(h.PercentileNs(99) / 1e3);
  w->Key("p999_us");
  w->Double(h.PercentileNs(99.9) / 1e3);
  // Sparse bucket dump: [lower_ns, count] for occupied buckets only (the
  // full log-bucket array is ~650 entries, nearly all zero).
  w->Key("buckets_ns");
  w->BeginArray();
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) {
      continue;
    }
    w->BeginArray();
    w->Uint(LatencyBuckets::LowerNs(i));
    w->Uint(h.counts[i]);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

void WriteRegistry(JsonWriter* w, const RegistrySnapshot& snap) {
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, v] : snap.counters) {
    w->Key(name);
    w->Uint(v);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, v] : snap.gauges) {
    w->Key(name);
    w->Double(v);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w->Key(name);
    WriteHistogram(w, h);
  }
  w->EndObject();
  if (!snap.latency.empty()) {
    w->Key("latency");
    w->BeginObject();
    for (const auto& [name, h] : snap.latency) {
      w->Key(name);
      WriteLatency(w, h);
    }
    w->EndObject();
  }
}

void WriteTraces(JsonWriter* w, const PathTracer& tracer, size_t max_packets) {
  w->Key("traces");
  w->BeginObject();
  w->Key("started");
  w->Uint(tracer.started());
  w->Key("sampled");
  w->Uint(tracer.sampled());
  w->Key("hop_latency");
  WriteHistogram(w, tracer.HopLatencyHistogram());
  w->Key("hops");
  w->BeginArray();
  for (const HopLatency& hl : tracer.HopLatencies()) {
    w->BeginObject();
    w->Key("from");
    w->String(hl.from);
    w->Key("to");
    w->String(hl.to);
    w->Key("count");
    w->Uint(hl.count);
    w->Key("mean_us");
    w->Double(hl.mean() * 1e6);
    w->Key("min_us");
    w->Double(hl.min * 1e6);
    w->Key("max_us");
    w->Double(hl.max * 1e6);
    w->Key("mean_wait_us");
    w->Double(hl.mean_wait() * 1e6);
    w->EndObject();
  }
  w->EndArray();
  w->Key("packets");
  w->BeginArray();
  size_t emitted = 0;
  for (const PacketTrace& tr : tracer.Traces()) {
    if (emitted >= max_packets) {
      break;
    }
    emitted++;
    w->BeginObject();
    w->Key("id");
    w->Uint(tr.id);
    w->Key("candidate");
    w->Uint(tr.candidate);
    w->Key("complete");
    w->Bool(tr.complete);
    w->Key("hops");
    w->BeginArray();
    for (const TraceHop& hop : tr.hops) {
      w->BeginObject();
      w->Key("point");
      w->String(HopPointName(hop));
      w->Key("t");
      w->Double(hop.t);
      w->Key("wait");
      w->Double(hop.wait);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string ToJson(const ExportBundle& bundle) {
  JsonWriter w;
  w.BeginObject();
  if (bundle.registry != nullptr) {
    WriteRegistry(&w, bundle.registry->Snapshot());
  }
  if (bundle.tracer != nullptr) {
    WriteTraces(&w, *bundle.tracer, bundle.max_trace_packets);
  }
  if (!bundle.series.empty()) {
    w.Key("series");
    w.BeginArray();
    for (const TimeSeries* ts : bundle.series) {
      if (ts == nullptr) {
        continue;
      }
      w.BeginObject();
      w.Key("name");
      w.String(ts->name);
      w.Key("points");
      w.BeginArray();
      for (const auto& [t, v] : ts->points) {
        w.BeginArray();
        w.Double(t);
        w.Double(v);
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

bool WriteJson(const std::string& path, const ExportBundle& bundle) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = ToJson(bundle);
  size_t written = fwrite(json.data(), 1, json.size(), f);
  fputc('\n', f);
  fclose(f);
  return written == json.size();
}

std::string RegistryCsv(const RegistrySnapshot& snap) {
  std::string out = "kind,name,value\n";
  char buf[64];
  for (const auto& [name, v] : snap.counters) {
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += "counter," + name + "," + buf + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    snprintf(buf, sizeof(buf), "%.17g", v);
    out += "gauge," + name + "," + buf + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(h.count));
    out += "histogram_count," + name + "," + buf + "\n";
  }
  return out;
}

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void PromNumber(std::string* out, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

}  // namespace

std::string PrometheusText(const RegistrySnapshot& snap) {
  std::string out;
  char buf[64];
  out += "# HELP rb_counter RouteBricks monotonic counters, keyed by registry name.\n";
  out += "# TYPE rb_counter counter\n";
  for (const auto& [name, v] : snap.counters) {
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += "rb_counter{name=\"" + PromLabelEscape(name) + "\"} ";
    out += buf;
    out += "\n";
  }
  out += "# HELP rb_gauge RouteBricks gauges, keyed by registry name.\n";
  out += "# TYPE rb_gauge gauge\n";
  for (const auto& [name, v] : snap.gauges) {
    out += "rb_gauge{name=\"" + PromLabelEscape(name) + "\"} ";
    PromNumber(&out, v);
    out += "\n";
  }
  out += "# HELP rb_histogram RouteBricks histograms, keyed by registry name.\n";
  out += "# TYPE rb_histogram histogram\n";
  for (const auto& [name, h] : snap.histograms) {
    const std::string label = PromLabelEscape(name);
    const double width = h.counts.empty() ? 0 : (h.hi - h.lo) / static_cast<double>(h.counts.size());
    // Cumulative buckets: observations <= le. Underflow (below `lo`) is
    // <= every finite edge; overflow appears only at +Inf, which must
    // equal the total observation count.
    uint64_t cum = h.underflow;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      out += "rb_histogram_bucket{name=\"" + label + "\",le=\"";
      PromNumber(&out, h.lo + width * static_cast<double>(i + 1));
      out += "\"} ";
      snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(cum));
      out += buf;
      out += "\n";
    }
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(h.count));
    out += "rb_histogram_bucket{name=\"" + label + "\",le=\"+Inf\"} ";
    out += buf;
    out += "\n";
    out += "rb_histogram_sum{name=\"" + label + "\"} ";
    PromNumber(&out, h.sum);
    out += "\n";
    out += "rb_histogram_count{name=\"" + label + "\"} ";
    out += buf;
    out += "\n";
  }
  if (!snap.latency.empty()) {
    out += "# HELP rb_latency RouteBricks log-bucketed latency histograms, "
           "keyed by registry name; le edges in seconds.\n";
    out += "# TYPE rb_latency histogram\n";
    for (const auto& [name, h] : snap.latency) {
      const std::string label = PromLabelEscape(name);
      // Sparse cumulative buckets: one le per occupied log bucket (the
      // exposition format permits any monotone le set), plus +Inf.
      uint64_t cum = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) {
          continue;
        }
        cum += h.counts[i];
        out += "rb_latency_bucket{name=\"" + label + "\",le=\"";
        PromNumber(&out, static_cast<double>(LatencyBuckets::UpperNs(i)) / 1e9);
        out += "\"} ";
        snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(cum));
        out += buf;
        out += "\n";
      }
      snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(h.count));
      out += "rb_latency_bucket{name=\"" + label + "\",le=\"+Inf\"} ";
      out += buf;
      out += "\n";
      out += "rb_latency_sum{name=\"" + label + "\"} ";
      PromNumber(&out, h.sum_ns / 1e9);
      out += "\n";
      out += "rb_latency_count{name=\"" + label + "\"} ";
      out += buf;
      out += "\n";
    }
  }
  return out;
}

bool WriteCsv(const std::string& path, const RegistrySnapshot& snap) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string csv = RegistryCsv(snap);
  size_t written = fwrite(csv.data(), 1, csv.size(), f);
  fclose(f);
  return written == csv.size();
}

}  // namespace telemetry
}  // namespace rb
