#include "telemetry/trace_export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  *out += buf;
}

// "cpu@3" -> 3; points without a numeric @-suffix share track 0.
int TrackOf(const std::string& point) {
  size_t at = point.rfind('@');
  if (at == std::string::npos || at + 1 >= point.size()) {
    return 0;
  }
  int v = 0;
  for (size_t i = at + 1; i < point.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(point[i]))) {
      return 0;
    }
    v = v * 10 + (point[i] - '0');
  }
  return v;
}

}  // namespace

std::string TraceEventJson(const PathTracer& tracer, bool complete_only) {
  std::vector<PacketTrace> traces = tracer.Traces();

  // Rebase: wall-clock steady_clock seconds are huge; Perfetto renders
  // from the earliest ts, so subtract the run's first hop time.
  double t0 = std::numeric_limits<double>::infinity();
  for (const PacketTrace& tr : traces) {
    if (!tr.hops.empty()) {
      t0 = std::min(t0, tr.hops.front().t);
    }
  }
  if (!std::isfinite(t0)) {
    t0 = 0;
  }

  std::string out = "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first_event = true;
  for (const PacketTrace& tr : traces) {
    if (tr.hops.empty() || (complete_only && !tr.complete)) {
      continue;
    }
    // Process name metadata: one row group per sampled packet.
    if (!first_event) {
      out += ", ";
    }
    first_event = false;
    out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": ";
    out += std::to_string(tr.id);
    out += ", \"args\": {\"name\": \"packet ";
    out += std::to_string(tr.candidate);
    out += tr.complete ? "\"}}" : " (dropped)\"}}";

    for (size_t h = 1; h < tr.hops.size(); ++h) {
      const TraceHop& prev = tr.hops[h - 1];
      const TraceHop& hop = tr.hops[h];
      double dur_us = (hop.t - prev.t) * 1e6;
      if (dur_us < 0) {
        dur_us = 0;  // defensive: clock skew between hop sources
      }
      double wait_us = hop.wait * 1e6;
      out += ", {\"ph\": \"X\", \"name\": \"";
      AppendEscaped(&out, HopPointName(hop));
      out += "\", \"cat\": \"hop\", \"pid\": ";
      out += std::to_string(tr.id);
      out += ", \"tid\": ";
      out += std::to_string(TrackOf(HopPointName(hop)));
      out += ", \"ts\": ";
      AppendNumber(&out, (prev.t - t0) * 1e6);
      out += ", \"dur\": ";
      AppendNumber(&out, dur_us);
      out += ", \"args\": {\"from\": \"";
      AppendEscaped(&out, HopPointName(prev));
      out += "\", \"wait_us\": ";
      AppendNumber(&out, wait_us);
      out += ", \"service_us\": ";
      AppendNumber(&out, dur_us >= wait_us ? dur_us - wait_us : 0.0);
      if (!tr.complete && h + 1 == tr.hops.size()) {
        out += ", \"drop\": true";
      }
      out += "}}";
    }
  }
  out += "]}\n";
  return out;
}

bool WriteTraceEventFile(const PathTracer& tracer, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    RB_LOG_ERROR("cannot open trace-out file %s", path.c_str());
    return false;
  }
  f << TraceEventJson(tracer);
  return static_cast<bool>(f);
}

}  // namespace telemetry
}  // namespace rb
