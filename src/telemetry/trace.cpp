#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const std::string& HopPointName(const TraceHop& hop) {
  static const std::string kEmpty;
  return hop.point == kInvalidScope ? kEmpty : ScopeName(hop.point);
}

namespace {
// Deterministic 64-bit mix (splitmix64 finalizer): the reservoir's coin.
// Seeded per-candidate so replacement decisions are a pure function of
// (seed, candidate index) — replayable across runs and thread schedules.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

PathTracer::PathTracer(const TracerConfig& config) : config_(config) {
  RB_CHECK(config.sample_every >= 1);
  RB_CHECK(config.max_traces >= 1);
  sample_every_.store(config.sample_every, std::memory_order_relaxed);
  sample_offset_.store(config.seed % config.sample_every, std::memory_order_relaxed);
  slots_ = std::make_unique<Slot[]>(config.max_traces);
}

void PathTracer::set_sample_every(uint32_t n) {
  RB_CHECK(n >= 1);
  // Two relaxed stores: a racing StartTrace may briefly pair the new rate
  // with the old offset, which only shifts which packet of the next N is
  // taken — sampling stays 1-in-N throughout.
  sample_every_.store(n, std::memory_order_relaxed);
  sample_offset_.store(config_.seed % n, std::memory_order_relaxed);
}

uint64_t PathTracer::sampled() const {
  return std::min<uint64_t>(next_candidate_.load(std::memory_order_relaxed),
                            config_.max_traces);
}

void PathTracer::AddHandlers(HandlerRegistry* handlers) {
  handlers->AddRead("tracer.started",
                    [this] { return std::to_string(started()); });
  handlers->AddRead("tracer.sampled",
                    [this] { return std::to_string(sampled()); });
  handlers->AddRead("tracer.candidates",
                    [this] { return std::to_string(candidates()); });
  handlers->AddRead("tracer.max_traces",
                    [this] { return std::to_string(config_.max_traces); });
  handlers->AddRead("tracer.sample_every",
                    [this] { return std::to_string(sample_every()); });
  handlers->AddWrite("tracer.sample_every", [this](const std::string& value) {
    uint64_t n = 0;
    if (!ParseHandlerU64(value, &n) || n < 1 || n > UINT32_MAX) {
      return HandlerResult::Error("expected integer in [1, 2^32)");
    }
    set_sample_every(static_cast<uint32_t>(n));
    return HandlerResult::Ok();
  });
}

PathTracer::Slot* PathTracer::LockSlot(uint64_t handle) {
  uint64_t idx = (handle & 0xffffffffull);
  if (idx == 0 || idx > config_.max_traces) {
    return nullptr;
  }
  Slot& s = slots_[idx - 1];
  uint32_t gen = static_cast<uint32_t>(handle >> 32);
  while (s.lock.test_and_set(std::memory_order_acquire)) {
  }
  if (s.gen.load(std::memory_order_relaxed) != gen) {
    Unlock(&s);  // slot was reclaimed by a later candidate: handle stale
    return nullptr;
  }
  return &s;
}

uint64_t PathTracer::StartTrace(ScopeId point, double t) {
  uint64_t n = started_.fetch_add(1, std::memory_order_relaxed);
  if (n % sample_every_.load(std::memory_order_relaxed) !=
      sample_offset_.load(std::memory_order_relaxed)) {
    return 0;
  }
  uint64_t k = next_candidate_.fetch_add(1, std::memory_order_relaxed);
  size_t slot;
  if (k < config_.max_traces) {
    slot = static_cast<size_t>(k);  // reservoir still filling
  } else {
    // Algorithm R: candidate k replaces a uniform slot with probability
    // max_traces / (k + 1); otherwise it is not traced at all.
    uint64_t j = Mix64(config_.seed ^ k) % (k + 1);
    if (j >= config_.max_traces) {
      return 0;
    }
    slot = static_cast<size_t>(j);
  }
  Slot& s = slots_[slot];
  while (s.lock.test_and_set(std::memory_order_acquire)) {
  }
  uint32_t gen = s.gen.load(std::memory_order_relaxed) + 1;
  s.gen.store(gen, std::memory_order_relaxed);
  s.trace.id = slot + 1;
  s.trace.candidate = k;
  s.trace.complete = false;
  s.trace.hops.clear();
  if (s.trace.hops.capacity() < 8) {
    s.trace.hops.reserve(8);
  }
  s.trace.hops.push_back({point, t, 0});
  Unlock(&s);
  return MakeHandle(gen, slot);
}

void PathTracer::Record(uint64_t handle, ScopeId point, double t, double wait) {
  if (handle == 0) {
    return;
  }
  Slot* s = LockSlot(handle);
  if (s == nullptr) {
    return;
  }
  s->trace.hops.push_back({point, t, wait});
  Unlock(s);
}

void PathTracer::EndTrace(uint64_t handle, ScopeId point, double t, double wait) {
  if (handle == 0) {
    return;
  }
  Slot* s = LockSlot(handle);
  if (s == nullptr) {
    return;
  }
  s->trace.hops.push_back({point, t, wait});
  s->trace.complete = true;
  Unlock(s);
}

void PathTracer::Abandon(uint64_t handle, ScopeId point, double t) {
  Record(handle, point, t);
}

uint64_t PathTracer::StartTrace(const std::string& point, double t) {
  return StartTrace(InternScopeName(point), t);
}
void PathTracer::Record(uint64_t handle, const std::string& point, double t,
                        double wait) {
  Record(handle, InternScopeName(point), t, wait);
}
void PathTracer::EndTrace(uint64_t handle, const std::string& point, double t,
                          double wait) {
  EndTrace(handle, InternScopeName(point), t, wait);
}
void PathTracer::Abandon(uint64_t handle, const std::string& point, double t) {
  Abandon(handle, InternScopeName(point), t);
}

std::vector<PacketTrace> PathTracer::Traces() const {
  uint64_t n = sampled();
  std::vector<PacketTrace> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slot& s = slots_[i];
    while (s.lock.test_and_set(std::memory_order_acquire)) {
    }
    out.push_back(s.trace);
    s.lock.clear(std::memory_order_release);
  }
  return out;
}

std::vector<HopLatency> PathTracer::HopLatencies() const {
  std::map<std::pair<ScopeId, ScopeId>, HopLatency> by_pair;
  uint64_t n = sampled();
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = slots_[i].trace;
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      double dt = tr.hops[h].t - tr.hops[h - 1].t;
      auto key = std::make_pair(tr.hops[h - 1].point, tr.hops[h].point);
      auto [it, inserted] = by_pair.try_emplace(key);
      HopLatency& hl = it->second;
      if (inserted) {
        hl.from = HopPointName(tr.hops[h - 1]);
        hl.to = HopPointName(tr.hops[h]);
        hl.min = hl.max = dt;
      } else {
        hl.min = std::min(hl.min, dt);
        hl.max = std::max(hl.max, dt);
      }
      hl.count++;
      hl.sum += dt;
      hl.wait_sum += tr.hops[h].wait;
    }
  }
  std::vector<HopLatency> out;
  out.reserve(by_pair.size());
  for (auto& [key, hl] : by_pair) {
    out.push_back(std::move(hl));
  }
  return out;
}

HistogramSnapshot PathTracer::HopLatencyHistogram(size_t buckets) const {
  // Two passes: find the observed range, then bucket.
  uint64_t n = sampled();
  double lo = 0, hi = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = slots_[i].trace;
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      double dt = tr.hops[h].t - tr.hops[h - 1].t;
      if (first) {
        lo = hi = dt;
        first = false;
      } else {
        lo = std::min(lo, dt);
        hi = std::max(hi, dt);
      }
    }
  }
  if (first || hi <= lo) {
    hi = lo + 1e-9;  // degenerate range: single-point histogram
  }
  // Nudge the upper edge so the observed max lands in-range, not overflow.
  hi += (hi - lo) * 1e-6;
  ShardedHistogram hist(HistogramOptions{lo, hi, buckets});
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = slots_[i].trace;
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      hist.Observe(tr.hops[h].t - tr.hops[h - 1].t);
    }
  }
  return hist.Snapshot();
}

}  // namespace telemetry
}  // namespace rb
