#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PathTracer::PathTracer(const TracerConfig& config) : config_(config) {
  RB_CHECK(config.sample_every >= 1);
  sample_every_.store(config.sample_every, std::memory_order_relaxed);
  sample_offset_.store(config.seed % config.sample_every, std::memory_order_relaxed);
  traces_.resize(config.max_traces);
  for (size_t i = 0; i < traces_.size(); ++i) {
    traces_[i].id = i + 1;
    traces_[i].hops.reserve(8);
  }
}

void PathTracer::set_sample_every(uint32_t n) {
  RB_CHECK(n >= 1);
  // Two relaxed stores: a racing StartTrace may briefly pair the new rate
  // with the old offset, which only shifts which packet of the next N is
  // taken — sampling stays 1-in-N throughout.
  sample_every_.store(n, std::memory_order_relaxed);
  sample_offset_.store(config_.seed % n, std::memory_order_relaxed);
}

void PathTracer::AddHandlers(HandlerRegistry* handlers) {
  handlers->AddRead("tracer.started",
                    [this] { return std::to_string(started()); });
  handlers->AddRead("tracer.sampled",
                    [this] { return std::to_string(sampled()); });
  handlers->AddRead("tracer.max_traces",
                    [this] { return std::to_string(config_.max_traces); });
  handlers->AddRead("tracer.sample_every",
                    [this] { return std::to_string(sample_every()); });
  handlers->AddWrite("tracer.sample_every", [this](const std::string& value) {
    uint64_t n = 0;
    if (!ParseHandlerU64(value, &n) || n < 1 || n > UINT32_MAX) {
      return HandlerResult::Error("expected integer in [1, 2^32)");
    }
    set_sample_every(static_cast<uint32_t>(n));
    return HandlerResult::Ok();
  });
}

uint64_t PathTracer::StartTrace(const std::string& point, double t) {
  uint64_t n = started_.fetch_add(1, std::memory_order_relaxed);
  if (n % sample_every_.load(std::memory_order_relaxed) !=
      sample_offset_.load(std::memory_order_relaxed)) {
    return 0;
  }
  uint64_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= traces_.size()) {
    // Out of capacity: put the counter back (approximately — concurrent
    // racers may leave it above max_traces; sampled() clamps on read).
    next_slot_.store(traces_.size(), std::memory_order_relaxed);
    return 0;
  }
  traces_[slot].hops.push_back({point, t});
  return slot + 1;
}

void PathTracer::Record(uint64_t handle, const std::string& point, double t) {
  if (handle == 0 || handle > traces_.size()) {
    return;
  }
  traces_[handle - 1].hops.push_back({point, t});
}

void PathTracer::EndTrace(uint64_t handle, const std::string& point, double t) {
  if (handle == 0 || handle > traces_.size()) {
    return;
  }
  PacketTrace& tr = traces_[handle - 1];
  tr.hops.push_back({point, t});
  tr.complete = true;
}

void PathTracer::Abandon(uint64_t handle, const std::string& point, double t) {
  Record(handle, point, t);
}

std::vector<PacketTrace> PathTracer::Traces() const {
  uint64_t n = std::min<uint64_t>(next_slot_.load(std::memory_order_relaxed), traces_.size());
  return std::vector<PacketTrace>(traces_.begin(), traces_.begin() + static_cast<long>(n));
}

std::vector<HopLatency> PathTracer::HopLatencies() const {
  std::map<std::pair<std::string, std::string>, HopLatency> by_pair;
  uint64_t n = std::min<uint64_t>(next_slot_.load(std::memory_order_relaxed), traces_.size());
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = traces_[i];
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      double dt = tr.hops[h].t - tr.hops[h - 1].t;
      auto key = std::make_pair(tr.hops[h - 1].point, tr.hops[h].point);
      auto [it, inserted] = by_pair.try_emplace(key);
      HopLatency& hl = it->second;
      if (inserted) {
        hl.from = key.first;
        hl.to = key.second;
        hl.min = hl.max = dt;
      } else {
        hl.min = std::min(hl.min, dt);
        hl.max = std::max(hl.max, dt);
      }
      hl.count++;
      hl.sum += dt;
    }
  }
  std::vector<HopLatency> out;
  out.reserve(by_pair.size());
  for (auto& [key, hl] : by_pair) {
    out.push_back(std::move(hl));
  }
  return out;
}

HistogramSnapshot PathTracer::HopLatencyHistogram(size_t buckets) const {
  // Two passes: find the observed range, then bucket.
  uint64_t n = std::min<uint64_t>(next_slot_.load(std::memory_order_relaxed), traces_.size());
  double lo = 0, hi = 0;
  bool first = true;
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = traces_[i];
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      double dt = tr.hops[h].t - tr.hops[h - 1].t;
      if (first) {
        lo = hi = dt;
        first = false;
      } else {
        lo = std::min(lo, dt);
        hi = std::max(hi, dt);
      }
    }
  }
  if (first || hi <= lo) {
    hi = lo + 1e-9;  // degenerate range: single-point histogram
  }
  // Nudge the upper edge so the observed max lands in-range, not overflow.
  hi += (hi - lo) * 1e-6;
  ShardedHistogram hist(HistogramOptions{lo, hi, buckets});
  for (uint64_t i = 0; i < n; ++i) {
    const PacketTrace& tr = traces_[i];
    if (!tr.complete) {
      continue;
    }
    for (size_t h = 1; h < tr.hops.size(); ++h) {
      hist.Observe(tr.hops[h].t - tr.hops[h - 1].t);
    }
  }
  return hist.Snapshot();
}

}  // namespace telemetry
}  // namespace rb
