// Always-on latency aggregation: per-core-sharded, log-bucketed (HDR-style)
// histograms over nanoseconds, built for the measured latency plane.
//
// The linear ShardedHistogram in metrics.hpp needs a [lo, hi) range chosen
// up front; latency does not cooperate — the same fwd/64B run spans ~1 µs
// service times and multi-ms overload tails, and a fixed linear range
// either clips the tail into the overflow bucket or smears the body into
// one bin. A log2 bucket layout (16 sub-buckets per octave, so ~6% relative
// resolution from 1 ns to ~18 minutes) keeps p50 and p999 simultaneously
// meaningful with one fixed-size array: no heap allocation, no range
// configuration, no rebucketing on the hot path.
//
// Concurrency contract matches Counter/ShardedHistogram: one writer per
// core shard (RouteBricks' one-core-per-queue discipline), relaxed atomics
// throughout, readers may snapshot concurrently and get a consistent-enough
// merged view that is exact once writers quiesce.
#ifndef RB_TELEMETRY_LATENCY_STATS_HPP_
#define RB_TELEMETRY_LATENCY_STATS_HPP_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rb {
namespace telemetry {

// --- ingress stamping kill switch ---
//
// Gates the per-packet ingress cycle stamp (NicPort::Deliver) so the
// stamp's cost is A/B measurable on the same host (bench_latency
// --stamp-ab) and can be shed entirely if a deployment wants the last
// fraction of a percent back. Default on: the latency plane is meant to
// be always-on.
void SetIngressStampEnabled(bool on);
bool IngressStampEnabled();

// Redeclared from metrics.hpp (including it here would cycle): the
// calling core's shard index, as set by SetThisCore.
int ThisCore();

// Log2 bucket geometry, shared by the histogram and its snapshot.
// Index layout: values < 2^kSubBits land in exact unit buckets; above
// that, each octave [2^e, 2^(e+1)) splits into 2^kSubBits equal
// sub-buckets. Monotone in the value, O(1) both ways.
struct LatencyBuckets {
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr int kOctaves = 40; // top bucket lower edge ~2^40 ns
  static constexpr size_t kCount = static_cast<size_t>(kOctaves + 1)
                                   << kSubBits;

  // Inline: runs once per forwarded packet on the stamping hot path.
  static size_t Index(uint64_t ns) {
    constexpr uint64_t kSubCount = uint64_t{1} << kSubBits;
    if (ns < kSubCount) {
      return static_cast<size_t>(ns);  // exact unit buckets
    }
    int e = 63 - std::countl_zero(ns);  // floor(log2 ns), >= kSubBits
    uint64_t sub = (ns >> (e - kSubBits)) & (kSubCount - 1);
    size_t idx =
        (static_cast<size_t>(e - kSubBits + 1) << kSubBits) + static_cast<size_t>(sub);
    return idx < kCount - 1 ? idx : kCount - 1;
  }
  // Inclusive lower / exclusive upper edge of bucket `idx`, in ns.
  static uint64_t LowerNs(size_t idx);
  static uint64_t UpperNs(size_t idx);
};

// Merged, immutable view of one LatencyHistogram. Percentile semantics
// match HistogramSnapshot: interpolate linearly inside the bucket, clip
// end ranks to the observed envelope. count/sum/min/max are reconstructed
// from bucket occupancy at snapshot time — exact for sub-16 ns values
// (unit buckets), within one ~6% sub-bucket otherwise — so the write path
// stays a single counter bump.
struct LatencySnapshot {
  std::vector<uint64_t> counts;  // [LatencyBuckets::kCount]
  uint64_t count = 0;
  double sum_ns = 0;             // bucket-midpoint reconstruction
  uint64_t min_ns = 0;           // lower edge of the lowest occupied bucket
  uint64_t max_ns = 0;           // upper edge (inclusive) of the highest

  double mean_ns() const {
    return count ? sum_ns / static_cast<double>(count) : 0.0;
  }
  // p in [0, 100]; returns nanoseconds.
  double PercentileNs(double p) const;
};

// Fixed-geometry log-bucketed histogram with per-core sharded bucket
// arrays. ObserveNs is wait-free: one bucket-index computation plus a
// handful of relaxed atomic stores on the caller core's shard.
class LatencyHistogram {
 public:
  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Inline, once per forwarded packet with stamping on: the entire write
  // path is the bucket-index computation and one relaxed load + store on
  // the caller core's shard (bench_latency's fwd/64B A/B holds the whole
  // stamping feature < 2%). No per-shard count/sum/min/max — Snapshot
  // reconstructs all of them from bucket occupancy, trading ~6% accuracy
  // on the derived stats for a hot path with nothing left to remove.
  // Single-writer-per-shard discipline (one core per queue) makes the
  // plain load/store RMW exact; a wrapped shard (more cores than shards)
  // can lose increments under a race, the same contract as
  // ShardedHistogram. Readers may snapshot concurrently.
  void ObserveNs(uint64_t ns) {
    Shard& s = shards_[static_cast<size_t>(ThisCore()) % 16];
    std::atomic<uint64_t>& bucket = s.counts[LatencyBuckets::Index(ns)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  LatencySnapshot Snapshot() const;

 private:
  // Bucket counts only — every derived statistic is reconstructed at
  // snapshot time from occupancy, keeping the write path minimal.
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  // [kCount]
  };

  Shard shards_[16];  // kMaxShards; kept literal to avoid metrics.hpp dep
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_LATENCY_STATS_HPP_
