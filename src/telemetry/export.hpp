// Snapshot/export layer: serializes MetricRegistry state, packet traces,
// and probe time series as JSON (one self-describing document) or CSV
// (counters/gauges as name,value rows) for offline analysis.
//
// JSON document shape:
//   {
//     "counters":   { "<name>": <uint>, ... },
//     "gauges":     { "<name>": <double>, ... },
//     "histograms": { "<name>": { "lo", "hi", "count", "underflow",
//                                 "overflow", "mean", "min", "max",
//                                 "p50", "p95", "p99",
//                                 "counts": [ ... ] }, ... },
//     "latency":    { "<name>": { "count", "mean_us", "min_us", "max_us",
//                                 "p50_us", "p90_us", "p99_us", "p999_us",
//                                 "buckets_ns": [[lower_ns, n], ...] } },
//     "traces":     { "started", "sampled", "hop_latency": {histogram},
//                     "hops": [ {"from","to","count","mean_us",...,
//                                "mean_wait_us"} ],
//                     "packets": [ {"id","candidate","complete",
//                                   "hops":[{"point","t","wait"}]} ] },
//     "series":     [ {"name", "points": [[t, v], ...]} ]
//   }
// Sections are present only when the corresponding source was supplied.
#ifndef RB_TELEMETRY_EXPORT_HPP_
#define RB_TELEMETRY_EXPORT_HPP_

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rb {
namespace telemetry {

// Everything a metrics dump can carry; null/empty members are omitted.
struct ExportBundle {
  const MetricRegistry* registry = nullptr;
  const PathTracer* tracer = nullptr;
  std::vector<const TimeSeries*> series;
  // Cap on full per-packet traces embedded in the JSON (hop latency
  // aggregates always cover every trace).
  size_t max_trace_packets = 32;
};

std::string ToJson(const ExportBundle& bundle);

// Writes ToJson(bundle) to `path`. Returns false on I/O error.
bool WriteJson(const std::string& path, const ExportBundle& bundle);

// Counters and gauges as "kind,name,value" CSV rows.
std::string RegistryCsv(const RegistrySnapshot& snap);
bool WriteCsv(const std::string& path, const RegistrySnapshot& snap);

// Prometheus text exposition (format 0.0.4) of a registry snapshot,
// served by the control socket's `GET /metrics`. Registry names keep
// their hierarchical form as a `name` label on three metric families —
// `rb_counter`, `rb_gauge`, and `rb_histogram` — so scrape configs need
// no per-metric mapping:
//   rb_counter{name="elem/Queue@4/drops"} 12
//   rb_histogram_bucket{name="des/latency_s",le="+Inf"} 1000
// Histogram buckets are cumulative (observations <= le, underflow
// included; le="+Inf" equals the observation count).
std::string PrometheusText(const RegistrySnapshot& snap);

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_EXPORT_HPP_
