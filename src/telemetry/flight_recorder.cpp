#include "telemetry/flight_recorder.hpp"

#include <bit>
#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace rb {
namespace telemetry {

namespace {

std::atomic<FlightRecorder*> g_recorder{nullptr};
// Guarded by the process-global nature of Install (setup-time only).
std::string g_crash_dump_path;  // NOLINT(runtime/string)

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void CrashDumpHook() {
  FlightRecorder* fr = g_recorder.load(std::memory_order_acquire);
  if (fr == nullptr) {
    return;
  }
  fr->Record(FrEvent::kCheckFail, kInvalidScope);
  std::fprintf(stderr, "--- flight recorder (fatal check) ---\n");
  fr->DumpTo(stderr, 64);
  std::fprintf(stderr, "--- end flight recorder ---\n");
  if (!g_crash_dump_path.empty()) {
    fr->DumpToFile(g_crash_dump_path);
  }
}

}  // namespace

const char* FrEventName(FrEvent e) {
  switch (e) {
    case FrEvent::kDrop:
      return "drop";
    case FrEvent::kAqmDrop:
      return "aqm_drop";
    case FrEvent::kBlocked:
      return "blocked";
    case FrEvent::kUnblocked:
      return "unblocked";
    case FrEvent::kThrottled:
      return "throttled";
    case FrEvent::kFailover:
      return "failover_reroute";
    case FrEvent::kAdmissionDrop:
      return "admission_drop";
    case FrEvent::kWatchdogStamp:
      return "watchdog_stamp";
    case FrEvent::kWatchdogStall:
      return "watchdog_stall";
    case FrEvent::kCheckFail:
      return "check_fail";
    case FrEvent::kRxOverflow:
      return "rx_overflow";
    case FrEvent::kUser:
      return "user";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t events_per_core) {
  RB_CHECK(events_per_core >= 2);
  const size_t n = RoundUpPow2(events_per_core);
  mask_ = n - 1;
  for (Ring& ring : rings_) {
    ring.slots = std::make_unique<Slot[]>(n);
  }
}

void FlightRecorder::Record(FrEvent type, uint32_t where, uint64_t a, uint64_t b) {
  Ring& ring = rings_[static_cast<size_t>(ThisCore()) % kMaxShards];
  const uint64_t ticket = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[ticket & mask_];
  // Invalidate first so a concurrent reader can't match a half-new slot
  // against the old generation's ticket, then publish the payload with a
  // release store of the new sequence.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.time_bits.store(std::bit_cast<uint64_t>(NowSeconds()), std::memory_order_relaxed);
  slot.type_where.store((static_cast<uint64_t>(type) << 32) | where, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

uint64_t FlightRecorder::recorded() const {
  uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.head.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FlightRecorder::Dump(size_t max_per_core) const {
  std::string out;
  for (size_t core = 0; core < kMaxShards; ++core) {
    const Ring& ring = rings_[core];
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    if (head == 0) {
      continue;
    }
    const uint64_t window = std::min<uint64_t>(head, mask_ + 1);
    const uint64_t first =
        head - std::min<uint64_t>(window, max_per_core == SIZE_MAX ? window : max_per_core);
    for (uint64_t ticket = first; ticket < head; ++ticket) {
      const Slot& slot = ring.slots[ticket & mask_];
      if (slot.seq.load(std::memory_order_acquire) != ticket + 1) {
        continue;  // overwritten or mid-write
      }
      const double t = std::bit_cast<double>(slot.time_bits.load(std::memory_order_relaxed));
      const uint64_t tw = slot.type_where.load(std::memory_order_relaxed);
      const uint64_t a = slot.a.load(std::memory_order_relaxed);
      const uint64_t b = slot.b.load(std::memory_order_relaxed);
      if (slot.seq.load(std::memory_order_acquire) != ticket + 1) {
        continue;  // torn: writer lapped us mid-read
      }
      const auto type = static_cast<FrEvent>(tw >> 32);
      const auto where = static_cast<uint32_t>(tw & 0xffffffffu);
      const std::string& name =
          where == kInvalidScope ? std::string("-") : ScopeName(where);
      out += Format("core=%zu seq=%llu t=%.6f %s where=%s a=%llu b=%llu\n", core,
                    static_cast<unsigned long long>(ticket), t, FrEventName(type), name.c_str(),
                    static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
    }
  }
  return out;
}

void FlightRecorder::DumpTo(std::FILE* f, size_t max_per_core) const {
  const std::string text = Dump(max_per_core);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fflush(f);
}

bool FlightRecorder::DumpToFile(const std::string& path, size_t max_per_core) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  DumpTo(f, max_per_core);
  std::fclose(f);
  return true;
}

void FlightRecorder::Install(FlightRecorder* fr) {
  g_recorder.store(fr, std::memory_order_release);
  SetCheckFailureHook(fr != nullptr ? &CrashDumpHook : nullptr);
}

FlightRecorder* FlightRecorder::Installed() {
  return g_recorder.load(std::memory_order_acquire);
}

void FlightRecorder::SetCrashDumpPath(const std::string& path) { g_crash_dump_path = path; }

}  // namespace telemetry
}  // namespace rb
