#include "telemetry/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/log.hpp"
#include "telemetry/json.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define RB_HAVE_RDTSC 1
#else
#define RB_HAVE_RDTSC 0
#endif

namespace rb {
namespace telemetry {

// --- cycle clock ---

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if RB_HAVE_RDTSC
// Calibrates the tsc against steady_clock over a short window. Modern
// x86 tscs are invariant (constant rate, monotone across cores), which is
// the only property we rely on; a 2 ms window gives ~0.1% accuracy.
double CalibrateTscHz() {
  const uint64_t t0 = SteadyNanos();
  const uint64_t c0 = __rdtsc();
  uint64_t t1 = t0;
  while (t1 - t0 < 2'000'000) {  // 2 ms
    t1 = SteadyNanos();
  }
  const uint64_t c1 = __rdtsc();
  const double secs = static_cast<double>(t1 - t0) * 1e-9;
  return secs > 0 ? static_cast<double>(c1 - c0) / secs : 1e9;
}
#endif

struct CycleClock {
  bool tsc;
  double hz;
};

const CycleClock& Clock() {
  static const CycleClock clock = [] {
#if RB_HAVE_RDTSC
    return CycleClock{true, CalibrateTscHz()};
#else
    // Pseudo-cycles: steady_clock nanoseconds, i.e. a 1 GHz "cycle".
    return CycleClock{false, 1e9};
#endif
  }();
  return clock;
}

}  // namespace

uint64_t ReadCycles() {
#if RB_HAVE_RDTSC
  return __rdtsc();
#else
  return SteadyNanos();
#endif
}

bool CycleSourceIsTsc() { return Clock().tsc; }

const char* CycleSourceName() { return Clock().tsc ? "tsc" : "steady_clock"; }

double CyclesPerSecond() { return Clock().hz; }

// --- scope-name interning ---

namespace {

struct NameTable {
  std::mutex mu;
  std::vector<std::string> names;
};

NameTable& Names() {
  static NameTable* table = new NameTable();  // leaked: outlives all statics
  return *table;
}

const std::string& InvalidName() {
  static const std::string name = "<invalid-scope>";
  return name;
}

}  // namespace

ScopeId InternScopeName(const std::string& name) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  for (size_t i = 0; i < table.names.size(); ++i) {
    if (table.names[i] == name) {
      return static_cast<ScopeId>(i);
    }
  }
  table.names.push_back(name);
  return static_cast<ScopeId>(table.names.size() - 1);
}

const std::string& ScopeName(ScopeId id) {
  NameTable& table = Names();
  std::lock_guard<std::mutex> lock(table.mu);
  if (id >= table.names.size()) {
    return InvalidName();
  }
  return table.names[id];
}

// --- profiler ---

void Profiler::Begin(ScopeId id) {
  Shard& s = shard();
  if (s.stack.size() >= kMaxDepth) {
    // Too deep: keep nesting balanced but attribute nothing new; the
    // cycles land in the kMaxDepth-level ancestor's inclusive time.
    s.stack.push_back(Frame{-1, 0});
    return;
  }
  Node& cur = s.nodes[static_cast<size_t>(s.current)];
  int32_t child = -1;
  for (const auto& [cid, idx] : cur.children) {
    if (cid == id) {
      child = idx;
      break;
    }
  }
  if (child < 0) {
    child = static_cast<int32_t>(s.nodes.size());
    Node node;
    node.id = id;
    node.parent = s.current;
    s.nodes.push_back(std::move(node));
    // `cur` may dangle after push_back; re-index.
    s.nodes[static_cast<size_t>(s.current)].children.emplace_back(id, child);
  }
  s.stack.push_back(Frame{child, ReadCycles()});
  s.current = child;
}

void Profiler::End() {
  const uint64_t now = ReadCycles();
  Shard& s = shard();
  RB_CHECK_MSG(!s.stack.empty(), "Profiler::End without matching Begin");
  Frame f = s.stack.back();
  s.stack.pop_back();
  if (f.node < 0) {
    return;  // overflow frame
  }
  Node& n = s.nodes[static_cast<size_t>(f.node)];
  n.cycles += now - f.start;
  n.calls++;
  s.current = n.parent;
}

void Profiler::AddWork(uint64_t packets, uint64_t bytes) {
  Shard& s = shard();
  Node& n = s.nodes[static_cast<size_t>(s.current)];
  n.packets += packets;
  n.bytes += bytes;
}

ProfileSnapshot Profiler::Snapshot() const {
  ProfileSnapshot snap;
  snap.cycles_per_sec = CyclesPerSecond();
  snap.tsc = CycleSourceIsTsc();

  // Recursive merge: walk each shard's tree, accumulating into the output
  // tree by scope id path.
  struct Merger {
    static ProfileNode* FindOrAdd(std::vector<ProfileNode>* out, const std::string& name) {
      for (ProfileNode& n : *out) {
        if (n.name == name) {
          return &n;
        }
      }
      out->emplace_back();
      out->back().name = name;
      return &out->back();
    }
    static void Merge(const std::vector<Node>& nodes, int32_t idx,
                      std::vector<ProfileNode>* out) {
      const Node& src = nodes[static_cast<size_t>(idx)];
      ProfileNode* dst = FindOrAdd(out, ScopeName(src.id));
      dst->calls += src.calls;
      dst->cycles += src.cycles;
      dst->packets += src.packets;
      dst->bytes += src.bytes;
      for (const auto& [cid, cidx] : src.children) {
        (void)cid;
        Merge(nodes, cidx, &dst->children);
      }
    }
    static void FillSelf(ProfileNode* n) {
      uint64_t child_cycles = 0;
      for (ProfileNode& c : n->children) {
        FillSelf(&c);
        child_cycles += c.cycles;
      }
      n->self_cycles = n->cycles > child_cycles ? n->cycles - child_cycles : 0;
    }
  };

  for (const Shard& s : shards_) {
    const Node& root = s.nodes[0];
    for (const auto& [cid, cidx] : root.children) {
      (void)cid;
      Merger::Merge(s.nodes, cidx, &snap.roots);
    }
  }
  for (ProfileNode& n : snap.roots) {
    Merger::FillSelf(&n);
  }
  return snap;
}

void Profiler::Reset() {
  for (Shard& s : shards_) {
    s.nodes.clear();
    s.nodes.emplace_back();
    s.stack.clear();
    s.current = 0;
  }
}

// --- global install ---

namespace {
std::atomic<Profiler*> g_profiler{nullptr};
}  // namespace

void SetProfiler(Profiler* p) { g_profiler.store(p, std::memory_order_release); }

Profiler* CurrentProfiler() { return g_profiler.load(std::memory_order_acquire); }

// --- snapshot helpers ---

uint64_t ProfileSnapshot::TotalCycles() const {
  uint64_t total = 0;
  for (const ProfileNode& n : roots) {
    total += n.cycles;
  }
  return total;
}

namespace {

const ProfileNode* FindIn(const std::vector<ProfileNode>& nodes, const std::string& name) {
  for (const ProfileNode& n : nodes) {
    if (n.name == name) {
      return &n;
    }
    if (const ProfileNode* hit = FindIn(n.children, name)) {
      return hit;
    }
  }
  return nullptr;
}

void AggregateInto(const std::vector<ProfileNode>& nodes, std::vector<ScopeTotals>* out) {
  for (const ProfileNode& n : nodes) {
    ScopeTotals* t = nullptr;
    for (ScopeTotals& cand : *out) {
      if (cand.name == n.name) {
        t = &cand;
        break;
      }
    }
    if (t == nullptr) {
      out->emplace_back();
      t = &out->back();
      t->name = n.name;
    }
    t->calls += n.calls;
    t->cycles += n.cycles;
    t->self_cycles += n.self_cycles;
    t->packets += n.packets;
    t->bytes += n.bytes;
    AggregateInto(n.children, out);
  }
}

void WriteNode(JsonWriter* w, const ProfileNode& n) {
  w->BeginObject();
  w->Key("name");
  w->String(n.name);
  w->Key("calls");
  w->Uint(n.calls);
  w->Key("cycles");
  w->Uint(n.cycles);
  w->Key("self_cycles");
  w->Uint(n.self_cycles);
  w->Key("packets");
  w->Uint(n.packets);
  w->Key("bytes");
  w->Uint(n.bytes);
  if (!n.children.empty()) {
    w->Key("children");
    w->BeginArray();
    for (const ProfileNode& c : n.children) {
      WriteNode(w, c);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

const ProfileNode* ProfileSnapshot::Find(const std::string& name) const {
  return FindIn(roots, name);
}

std::vector<ScopeTotals> ProfileSnapshot::AggregateByName() const {
  std::vector<ScopeTotals> out;
  AggregateInto(roots, &out);
  std::sort(out.begin(), out.end(), [](const ScopeTotals& a, const ScopeTotals& b) {
    return a.self_cycles > b.self_cycles;
  });
  return out;
}

std::string ProfileSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("cycles_per_sec");
  w.Double(cycles_per_sec);
  w.Key("cycle_source");
  w.String(tsc ? "tsc" : "steady_clock");
  w.Key("scopes");
  w.BeginArray();
  for (const ProfileNode& n : roots) {
    WriteNode(&w, n);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace telemetry
}  // namespace rb
