// Hardware performance-counter group: cycles, instructions, cache and
// branch events read through perf_event_open — the measurements behind the
// paper's Table 3 (instructions/packet, cycles/instruction) and its
// CPU-vs-memory efficiency argument (CPI 0.4-0.7 = CPU-efficient,
// 1.0-2.0 = memory-bound).
//
// perf_event_open is frequently unavailable (containers without
// CAP_PERFMON, kernel.perf_event_paranoid, non-Linux hosts); the group
// degrades gracefully: hw_available() turns false, Start/Stop keep
// working, and samples carry tsc-derived cycle counts only (instructions
// etc. zero). Callers branch on PerfSample::hw to decide what to report.
#ifndef RB_TELEMETRY_PERF_COUNTERS_HPP_
#define RB_TELEMETRY_PERF_COUNTERS_HPP_

#include <cstdint>
#include <string>

namespace rb {
namespace telemetry {

struct PerfCounterConfig {
  // Forces the no-perf_event_open fallback path (tests exercise it on any
  // machine; also useful to benchmark the tsc-only cost).
  bool force_fallback = false;
};

struct PerfSample {
  bool hw = false;            // hardware counters valid below
  double running_fraction = 1.0;  // time scheduled / time enabled (multiplexing)
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branches = 0;
  uint64_t branch_misses = 0;
  uint64_t fallback_cycles = 0;  // tsc (or pseudo-cycle) delta, always set

  // Hardware cycles when measured, tsc cycles otherwise.
  uint64_t best_cycles() const { return hw && cycles > 0 ? cycles : fallback_cycles; }
  double ipc() const {
    return hw && cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles)
                            : 0.0;
  }
  double cpi() const {
    return hw && instructions > 0
               ? static_cast<double>(cycles) / static_cast<double>(instructions)
               : 0.0;
  }
  double cache_miss_rate() const {
    return hw && cache_references > 0
               ? static_cast<double>(cache_misses) / static_cast<double>(cache_references)
               : 0.0;
  }
};

// One counter group bound to the calling thread (counts this process only,
// user space only — no privileges needed on most configurations). Usage:
//   PerfCounterGroup group;
//   group.Start();
//   ... workload ...
//   PerfSample s = group.Stop();
// Start/Stop may be repeated; each Stop returns the delta since the
// matching Start.
class PerfCounterGroup {
 public:
  explicit PerfCounterGroup(const PerfCounterConfig& config = {});
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // True when at least the cycle counter opened.
  bool hw_available() const { return leader_fd_ >= 0; }
  // Why hardware counters are unavailable ("" when hw_available()).
  const std::string& error() const { return error_; }
  // Number of hardware events in the group (0 when unavailable).
  int num_events() const { return num_events_; }

  void Start();
  PerfSample Stop();

 private:
  static constexpr int kMaxEvents = 6;

  int leader_fd_ = -1;
  int fds_[kMaxEvents];
  int slot_of_event_[kMaxEvents];  // event index -> position in read buffer
  int num_events_ = 0;
  bool started_ = false;
  uint64_t start_cycles_ = 0;
  std::string error_;
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_PERF_COUNTERS_HPP_
