#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace rb {
namespace telemetry {

namespace {
thread_local int t_core = 0;
std::atomic<bool> g_enabled{true};
}  // namespace

void SetThisCore(int core) { t_core = core < 0 ? 0 : core; }
int ThisCore() { return t_core; }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

ShardedHistogram::ShardedHistogram(const HistogramOptions& opts)
    : opts_(opts), width_((opts.hi - opts.lo) / static_cast<double>(opts.buckets)) {
  RB_CHECK(opts.hi > opts.lo);
  RB_CHECK(opts.buckets > 0);
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(opts.buckets);
    for (size_t b = 0; b < opts.buckets; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void ShardedHistogram::Observe(double x) {
  Shard& s = shards_[static_cast<size_t>(ThisCore()) % kMaxShards];
  // One writer per shard under the scheduling discipline, so plain
  // read-modify-write on the atomics (no RMW instructions needed for sum /
  // min / max); count uses fetch_add so wrapped shards stay correct.
  uint64_t n = s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.store(s.sum.load(std::memory_order_relaxed) + x, std::memory_order_relaxed);
  if (n == 0) {
    s.min.store(x, std::memory_order_relaxed);
    s.max.store(x, std::memory_order_relaxed);
  } else {
    if (x < s.min.load(std::memory_order_relaxed)) {
      s.min.store(x, std::memory_order_relaxed);
    }
    if (x > s.max.load(std::memory_order_relaxed)) {
      s.max.store(x, std::memory_order_relaxed);
    }
  }
  if (x < opts_.lo) {
    s.underflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= opts_.hi) {
    s.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t idx = static_cast<size_t>((x - opts_.lo) / width_);
  if (idx >= opts_.buckets) {
    idx = opts_.buckets - 1;
  }
  s.counts[idx].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot ShardedHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.lo = opts_.lo;
  snap.hi = opts_.hi;
  snap.counts.assign(opts_.buckets, 0);
  bool first = true;
  for (const Shard& s : shards_) {
    uint64_t n = s.count.load(std::memory_order_relaxed);
    if (n == 0) {
      continue;
    }
    snap.count += n;
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.underflow += s.underflow.load(std::memory_order_relaxed);
    snap.overflow += s.overflow.load(std::memory_order_relaxed);
    double mn = s.min.load(std::memory_order_relaxed);
    double mx = s.max.load(std::memory_order_relaxed);
    if (first) {
      snap.min = mn;
      snap.max = mx;
      first = false;
    } else {
      snap.min = std::min(snap.min, mn);
      snap.max = std::max(snap.max, mx);
    }
    for (size_t b = 0; b < opts_.buckets; ++b) {
      snap.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = underflow;
  if (seen >= target) {
    return min;  // rank among below-range samples: report observed min
  }
  double width = (hi - lo) / static_cast<double>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] >= target) {
      double frac =
          counts[i] ? static_cast<double>(target - seen) / static_cast<double>(counts[i]) : 0.0;
      return lo + (static_cast<double>(i) + frac) * width;
    }
    seen += counts[i];
  }
  return max;  // rank among above-range samples: report observed max
}

uint64_t RegistrySnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) {
      return &h;
    }
  }
  return nullptr;
}

const LatencySnapshot* RegistrySnapshot::FindLatency(const std::string& name) const {
  for (const auto& [n, h] : latency) {
    if (n == name) {
      return &h;
    }
  }
  return nullptr;
}

double RegistrySnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) {
      return v;
    }
  }
  return 0.0;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

ShardedHistogram* MetricRegistry::GetHistogram(const std::string& name,
                                               const HistogramOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<ShardedHistogram>(opts);
  }
  return slot.get();
}

LatencyHistogram* MetricRegistry::GetLatencyHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latency_[name];
  if (!slot) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return slot.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  snap.latency.reserve(latency_.size());
  for (const auto& [name, h] : latency_) {
    LatencySnapshot ls = h->Snapshot();
    if (ls.count > 0) {
      // Synthesized tail gauges, in microseconds. Emitted into the plain
      // gauge list so every existing export surface carries them.
      static constexpr struct {
        const char* suffix;
        double p;
      } kTails[] = {{"/p50_us", 50.0}, {"/p90_us", 90.0},
                    {"/p99_us", 99.0}, {"/p999_us", 99.9}};
      for (const auto& t : kTails) {
        snap.gauges.emplace_back(name + t.suffix, ls.PercentileNs(t.p) / 1e3);
      }
      snap.gauges.emplace_back(name + "/mean_us", ls.mean_ns() / 1e3);
      snap.gauges.emplace_back(name + "/count", static_cast<double>(ls.count));
    }
    snap.latency.emplace_back(name, std::move(ls));
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  return snap;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* g = new MetricRegistry();
  return *g;
}

}  // namespace telemetry
}  // namespace rb
