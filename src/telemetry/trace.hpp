// Sampled packet-path tracing.
//
// A PathTracer records, for 1-in-N packets, a timestamped hop at every
// point the packet touches: FromDevice -> elements -> Queue -> ToDevice in
// the Click graph (wall-clock timestamps — real execution), or
// ext-rx -> CPU -> NIC -> link -> ... -> ext-out in the cluster DES
// (simulated-time timestamps — fully deterministic). Consecutive-hop
// deltas give the per-hop latency breakdown that reproduces the paper's
// §4.3 "where do the cycles go" and §6.2 per-server latency decomposition
// from our own measurements.
//
// Concurrency: the sampling decision is an atomic packet counter, so it is
// cheap on the hot path and deterministic for a fixed seed when execution
// is deterministic (RunInline / the DES). A sampled packet's trace slot is
// touched by exactly one thread at a time — the packet's owning core —
// and ownership handoffs ride the SPSC rings' release/acquire edges, so
// recording needs no locks. Reading traces (Drain, HopLatencies) is only
// valid once the packets have left the data path.
#ifndef RB_TELEMETRY_TRACE_HPP_
#define RB_TELEMETRY_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"

namespace rb {
namespace telemetry {

// Monotonic wall-clock seconds for timestamping Click-graph hops.
double NowSeconds();

struct TraceHop {
  std::string point;  // element / server name, e.g. "IPLookup@3", "cpu@2"
  double t = 0;       // seconds (wall-clock or simulated, per data path)
};

struct PacketTrace {
  uint64_t id = 0;  // 1-based handle
  std::vector<TraceHop> hops;
  bool complete = false;  // EndTrace reached (packet left the data path)
};

struct TracerConfig {
  uint32_t sample_every = 64;  // sample 1 of N trace starts (>= 1)
  size_t max_traces = 1024;    // stop sampling once this many are taken
  uint64_t seed = 1;           // offsets which of each N packets is taken
};

// Mean/min/max latency between a consecutive pair of hop points, across
// all completed traces.
struct HopLatency {
  std::string from;
  std::string to;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

class PathTracer {
 public:
  explicit PathTracer(const TracerConfig& config);

  // Sampling decision + first hop. Returns a handle > 0 when this packet
  // is sampled, 0 otherwise (callers store the handle on the packet).
  uint64_t StartTrace(const std::string& point, double t);

  // Appends a hop to a sampled packet's trace. handle == 0 is a no-op.
  void Record(uint64_t handle, const std::string& point, double t);

  // Final hop; marks the trace complete.
  void EndTrace(uint64_t handle, const std::string& point, double t);

  // Terminal hop for a packet that left the path abnormally (drop): the
  // hop is recorded but the trace stays incomplete, so it is excluded from
  // hop-latency aggregates while remaining visible in the raw trace dump.
  void Abandon(uint64_t handle, const std::string& point, double t);

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }
  uint64_t sampled() const { return next_slot_.load(std::memory_order_relaxed); }
  // The configuration the tracer was built with; sample_every may have
  // been live-tuned since (see sample_every()).
  const TracerConfig& config() const { return config_; }

  // Live sampling rate: 1-in-N trace starts are sampled. Writable at
  // runtime (control-socket handler) — the sampling offset is re-derived
  // from the seed, and in-flight traces are unaffected.
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }
  void set_sample_every(uint32_t n);

  // Tracer introspection handlers (DESIGN.md §13): reads
  // `tracer.started`/`tracer.sampled`/`tracer.max_traces`, read-write
  // `tracer.sample_every`. The tracer must outlive `handlers`.
  void AddHandlers(HandlerRegistry* handlers);

  // --- read side (call after the data path has quiesced) ---

  // All traces taken so far, in sampling order.
  std::vector<PacketTrace> Traces() const;

  // Per-(from, to) hop-pair latency stats over completed traces.
  std::vector<HopLatency> HopLatencies() const;

  // One histogram over every consecutive-hop latency in every completed
  // trace (range picked from the observed spread).
  HistogramSnapshot HopLatencyHistogram(size_t buckets = 64) const;

 private:
  TracerConfig config_;
  // Live-tunable sampling knobs, read (relaxed) by every StartTrace.
  std::atomic<uint32_t> sample_every_{1};
  std::atomic<uint64_t> sample_offset_{0};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> next_slot_{0};
  std::vector<PacketTrace> traces_;  // preallocated [max_traces]
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_TRACE_HPP_
