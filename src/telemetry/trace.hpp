// Sampled packet-path tracing.
//
// A PathTracer records, for 1-in-N packets, a timestamped hop at every
// point the packet touches: FromDevice -> elements -> Queue -> ToDevice in
// the Click graph (wall-clock timestamps — real execution), or
// ext-rx -> CPU -> NIC -> link -> ... -> ext-out in the cluster DES
// (simulated-time timestamps — fully deterministic). Consecutive-hop
// deltas give the per-hop latency breakdown that reproduces the paper's
// §4.3 "where do the cycles go" and §6.2 per-server latency decomposition
// from our own measurements. Each hop additionally carries the queueing
// wait the packet accrued inside that hop's residency (Queue enqueue ->
// dequeue, DES arrival -> service start), so per-hop residency decomposes
// into wait + service.
//
// Hop points are interned ScopeIds (the profiler's process-global string
// table), so recording a hop is id + two doubles — no heap allocation on
// the data path, even for sampled packets.
//
// Sampling: the 1-in-N decimation is an atomic packet counter as before,
// but the bounded trace store is now a seeded *reservoir* (Algorithm R
// with a deterministic splitmix64 coin): once max_traces slots are full,
// the k-th candidate replaces a uniformly random held trace with
// probability max_traces/k. A long soak therefore keeps a uniform sample
// of the whole run instead of freezing on the first N packets.
//
// Concurrency: handles carry a per-slot generation, and slot mutation
// takes a per-slot spinlock so a replacement racing a late Record on the
// evicted trace is detected (stale generation) and dropped instead of
// corrupting the new occupant. Only sampled packets (1-in-N) ever touch a
// lock. Reading traces (Traces, HopLatencies) is only valid once the data
// path has quiesced.
#ifndef RB_TELEMETRY_TRACE_HPP_
#define RB_TELEMETRY_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace rb {
namespace telemetry {

// Monotonic wall-clock seconds for timestamping Click-graph hops.
double NowSeconds();

struct TraceHop {
  ScopeId point = kInvalidScope;  // interned element / server name
  double t = 0;     // seconds (wall-clock or simulated, per data path)
  double wait = 0;  // queueing wait inside this hop's residency, seconds
};

// Interned-name readback for a hop ("" for an invalid id).
const std::string& HopPointName(const TraceHop& hop);

struct PacketTrace {
  uint64_t id = 0;         // 1-based reservoir slot
  uint64_t candidate = 0;  // 0-based index among sampled candidates
  std::vector<TraceHop> hops;
  bool complete = false;  // EndTrace reached (packet left the data path)
};

struct TracerConfig {
  uint32_t sample_every = 64;  // sample 1 of N trace starts (>= 1)
  size_t max_traces = 1024;    // reservoir capacity
  uint64_t seed = 1;           // sampling offset + reservoir coin
};

// Mean/min/max latency between a consecutive pair of hop points, across
// all completed traces. `wait` aggregates the destination hop's queueing
// wait over the same pairs, so residency = wait + service is recoverable.
struct HopLatency {
  std::string from;
  std::string to;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double wait_sum = 0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  double mean_wait() const {
    return count ? wait_sum / static_cast<double>(count) : 0.0;
  }
};

class PathTracer {
 public:
  explicit PathTracer(const TracerConfig& config);

  // Sampling decision + first hop. Returns a handle > 0 when this packet
  // is sampled, 0 otherwise (callers store the handle on the packet).
  uint64_t StartTrace(ScopeId point, double t);

  // Appends a hop to a sampled packet's trace. handle == 0 is a no-op.
  void Record(uint64_t handle, ScopeId point, double t, double wait = 0);

  // Final hop; marks the trace complete.
  void EndTrace(uint64_t handle, ScopeId point, double t, double wait = 0);

  // Terminal hop for a packet that left the path abnormally (drop): the
  // hop is recorded but the trace stays incomplete, so it is excluded from
  // hop-latency aggregates while remaining visible in the raw trace dump.
  void Abandon(uint64_t handle, ScopeId point, double t);

  // String-keyed conveniences (cold callers, tests): intern then forward.
  uint64_t StartTrace(const std::string& point, double t);
  void Record(uint64_t handle, const std::string& point, double t, double wait = 0);
  void EndTrace(uint64_t handle, const std::string& point, double t, double wait = 0);
  void Abandon(uint64_t handle, const std::string& point, double t);

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }
  // Traces currently held in the reservoir.
  uint64_t sampled() const;
  // 1-in-N candidates seen so far (reservoir admissions + rejections).
  uint64_t candidates() const {
    return next_candidate_.load(std::memory_order_relaxed);
  }
  // The configuration the tracer was built with; sample_every may have
  // been live-tuned since (see sample_every()).
  const TracerConfig& config() const { return config_; }

  // Live sampling rate: 1-in-N trace starts are sampled. Writable at
  // runtime (control-socket handler) — the sampling offset is re-derived
  // from the seed, and in-flight traces are unaffected.
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }
  void set_sample_every(uint32_t n);

  // Tracer introspection handlers (DESIGN.md §13): reads
  // `tracer.started`/`tracer.sampled`/`tracer.candidates`/
  // `tracer.max_traces`, read-write `tracer.sample_every`. The tracer must
  // outlive `handlers`.
  void AddHandlers(HandlerRegistry* handlers);

  // --- read side (call after the data path has quiesced) ---

  // All traces currently held, in reservoir-slot order (NOT sampling
  // order: replacement means slot order carries no time ordering).
  std::vector<PacketTrace> Traces() const;

  // Per-(from, to) hop-pair latency stats over completed traces.
  std::vector<HopLatency> HopLatencies() const;

  // One histogram over every consecutive-hop latency in every completed
  // trace (range picked from the observed spread).
  HistogramSnapshot HopLatencyHistogram(size_t buckets = 64) const;

 private:
  struct Slot {
    PacketTrace trace;
    std::atomic<uint32_t> gen{0};      // bumped on (re)claim
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
  };

  // handle = (gen << 32) | (slot + 1); 0 = unsampled.
  static uint64_t MakeHandle(uint32_t gen, size_t slot) {
    return (static_cast<uint64_t>(gen) << 32) | (slot + 1);
  }
  // Decodes + locks the slot iff the generation still matches; returns
  // nullptr (unlocked) for stale or out-of-range handles.
  Slot* LockSlot(uint64_t handle);
  void Unlock(Slot* s) { s->lock.clear(std::memory_order_release); }

  TracerConfig config_;
  // Live-tunable sampling knobs, read (relaxed) by every StartTrace.
  std::atomic<uint32_t> sample_every_{1};
  std::atomic<uint64_t> sample_offset_{0};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> next_candidate_{0};
  std::unique_ptr<Slot[]> slots_;  // [max_traces]
};

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_TRACE_HPP_
