// Cycle-accounting profiler: per-core sharded, hierarchical scoped timers
// reproducing the paper's §4.3 cycle decomposition (cycles/packet split
// into app / packet-handling / overhead) from our own measurements instead
// of Intel's proprietary counter tools.
//
// Time source: the x86 timestamp counter (rdtsc) when available, calibrated
// once against steady_clock so cycle counts convert to seconds; on
// non-x86 hosts (or when tsc is unusable) a steady_clock-derived
// pseudo-cycle at 1 GHz keeps every downstream formula valid. The CI
// container has a stable invariant tsc, so measured numbers are real
// cycles there.
//
// Scope model: scopes nest (pipeline -> element -> phase) and each thread
// ("core", as set by telemetry::SetThisCore) keeps an independent shard of
// the scope tree, written without atomics — the RouteBricks one-core-per-
// packet discipline means every scope has exactly one writer per core.
// Snapshot() merges shards by scope path and computes child-exclusive
// ("self") cycles, so per-element breakdowns sum to the pipeline total.
// Snapshots must be taken while writers are quiescent (after Stop()/
// RunUntilIdle), same rule as PathTracer::Drain.
//
// Hot-path cost: instrumentation sites use the RB_PROF_* macros. With the
// build option RB_PROFILE off they compile to nothing (zero cost); with it
// on but no profiler installed (SetProfiler(nullptr), the default) each
// site is one relaxed atomic load and a branch; with a profiler installed
// a scope is two cycle-counter reads plus a few arithmetic ops.
#ifndef RB_TELEMETRY_PROFILER_HPP_
#define RB_TELEMETRY_PROFILER_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace rb {
namespace telemetry {

// --- cycle clock ---

// Current cycle count (tsc, or calibrated steady_clock pseudo-cycles).
uint64_t ReadCycles();
// True when ReadCycles returns the hardware timestamp counter.
bool CycleSourceIsTsc();
// Human-readable source name: "tsc" or "steady_clock".
const char* CycleSourceName();
// Cycles per second of ReadCycles' clock (calibrated once per process).
double CyclesPerSecond();

// --- scope names ---
//
// Scope names are interned once (process-global table, mutex-protected) so
// hot paths carry a 32-bit id instead of a string. Ids are valid for any
// Profiler instance and never invalidated.
using ScopeId = uint32_t;
constexpr ScopeId kInvalidScope = 0xffffffffu;

ScopeId InternScopeName(const std::string& name);
const std::string& ScopeName(ScopeId id);

// --- merged snapshot ---

struct ProfileNode {
  std::string name;
  uint64_t calls = 0;
  uint64_t cycles = 0;       // inclusive (children counted)
  uint64_t self_cycles = 0;  // exclusive: cycles - sum(children.cycles)
  uint64_t packets = 0;      // work attributed via AddWork
  uint64_t bytes = 0;
  std::vector<ProfileNode> children;

  double cycles_per_packet() const {
    return packets ? static_cast<double>(cycles) / static_cast<double>(packets) : 0.0;
  }
  double self_cycles_per_packet() const {
    return packets ? static_cast<double>(self_cycles) / static_cast<double>(packets) : 0.0;
  }
  double cycles_per_byte() const {
    return bytes ? static_cast<double>(cycles) / static_cast<double>(bytes) : 0.0;
  }
};

// Flat per-name totals (an element may appear at several tree positions —
// e.g. one scope per (port, queue) chain; aggregation sums them).
struct ScopeTotals {
  std::string name;
  uint64_t calls = 0;
  uint64_t cycles = 0;       // inclusive, summed over occurrences
  uint64_t self_cycles = 0;
  uint64_t packets = 0;
  uint64_t bytes = 0;
};

struct ProfileSnapshot {
  double cycles_per_sec = 0;
  bool tsc = false;
  std::vector<ProfileNode> roots;

  // Sum of root scopes' inclusive cycles — the profiled total.
  uint64_t TotalCycles() const;
  // Depth-first search for the first node with `name` (nullptr if absent).
  const ProfileNode* Find(const std::string& name) const;
  // Per-name totals over the whole tree, sorted by self_cycles descending.
  std::vector<ScopeTotals> AggregateByName() const;

  // JSON document:
  //   {"cycles_per_sec", "cycle_source", "scopes": [ {"name", "calls",
  //    "cycles", "self_cycles", "packets", "bytes", "children": [...]} ]}
  std::string ToJson() const;
};

// --- the profiler ---

class Profiler {
 public:
  // Deepest scope nesting tracked; deeper scopes are counted into their
  // depth-kMaxDepth ancestor rather than corrupting the stack.
  static constexpr size_t kMaxDepth = 64;

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Opens / closes a scope on the calling core's shard. Begin/End must
  // nest; ScopedCycles is the safe way to guarantee that.
  void Begin(ScopeId id);
  void End();

  // Attributes work (packets, bytes) to the innermost open scope on this
  // core (to the shard root when no scope is open).
  void AddWork(uint64_t packets, uint64_t bytes);

  // Merges all shards into one tree. Writers must be quiescent.
  ProfileSnapshot Snapshot() const;

  // Clears all shards (writers must be quiescent). Open scopes survive a
  // Reset only as fresh nodes from their next Begin.
  void Reset();

 private:
  struct Node {
    ScopeId id = kInvalidScope;
    int32_t parent = 0;
    uint64_t cycles = 0;
    uint64_t calls = 0;
    uint64_t packets = 0;
    uint64_t bytes = 0;
    std::vector<std::pair<ScopeId, int32_t>> children;  // id -> node index
  };
  struct Frame {
    int32_t node = 0;       // -1 = overflow frame (unattributed)
    uint64_t start = 0;
  };
  struct alignas(64) Shard {
    std::vector<Node> nodes;   // [0] is the root sentinel
    std::vector<Frame> stack;
    int32_t current = 0;

    Shard() {
      nodes.emplace_back();  // root sentinel
      stack.reserve(kMaxDepth);
    }
  };

  Shard& shard() { return shards_[static_cast<size_t>(ThisCore()) % kMaxShards]; }

  Shard shards_[kMaxShards];
};

// Process-global current profiler, read by the RB_PROF_* macros. Install
// before traffic flows, uninstall (nullptr) before destroying. Threads see
// the installed profiler immediately; per-core shard selection keeps
// concurrent workers from sharing write state.
void SetProfiler(Profiler* p);
Profiler* CurrentProfiler();

// RAII scope against the profiler installed at construction time (so an
// install/uninstall mid-scope cannot mismatch Begin/End).
class ScopedCycles {
 public:
  explicit ScopedCycles(ScopeId id) : prof_(CurrentProfiler()) {
    if (prof_ != nullptr) {
      prof_->Begin(id);
    }
  }
  ~ScopedCycles() {
    if (prof_ != nullptr) {
      prof_->End();
    }
  }
  ScopedCycles(const ScopedCycles&) = delete;
  ScopedCycles& operator=(const ScopedCycles&) = delete;

 private:
  Profiler* prof_;
};

// Instrumentation macros. RB_PROFILE=0 compiles them (and their argument
// expressions) out entirely.
#if defined(RB_PROFILE) && RB_PROFILE
#define RB_PROF_CONCAT_INNER_(a, b) a##b
#define RB_PROF_CONCAT_(a, b) RB_PROF_CONCAT_INNER_(a, b)
// Opens a scope for the rest of the enclosing block.
#define RB_PROF_SCOPE(scope_id) \
  ::rb::telemetry::ScopedCycles RB_PROF_CONCAT_(rb_prof_scope_, __COUNTER__)(scope_id)
// Attributes packets/bytes to the innermost open scope.
#define RB_PROF_WORK(pkts, byts)                                      \
  do {                                                                \
    ::rb::telemetry::Profiler* rb_prof_p_ = ::rb::telemetry::CurrentProfiler(); \
    if (rb_prof_p_ != nullptr) {                                      \
      rb_prof_p_->AddWork((pkts), (byts));                            \
    }                                                                 \
  } while (0)
#else
#define RB_PROF_SCOPE(scope_id) \
  do {                          \
  } while (0)
#define RB_PROF_WORK(pkts, byts) \
  do {                           \
  } while (0)
#endif

}  // namespace telemetry
}  // namespace rb

#endif  // RB_TELEMETRY_PROFILER_HPP_
