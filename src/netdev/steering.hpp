// Receive-queue steering policies for the multi-queue NIC.
//
// Two policies from the paper:
//  * RSS: hash the 5-tuple and pick rx queue = hash % nqueues (§4.2), so
//    same-flow packets always land on the same queue / core.
//  * MAC table: pick the rx queue from the destination MAC address (§6.1).
//    RouteBricks encodes the cluster output node in the MAC at the input
//    node so that intermediate/output nodes never re-read IP headers; a
//    port carrying cluster-internal traffic steers by MAC so the consuming
//    core can infer the output node purely from which queue the packet
//    arrived in.
#ifndef RB_NETDEV_STEERING_HPP_
#define RB_NETDEV_STEERING_HPP_

#include <cstdint>
#include <unordered_map>

#include "packet/flow.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace rb {

enum class SteeringMode : uint8_t {
  kSingleQueue,  // everything to queue 0 (the pre-multi-queue baseline)
  kRss,          // hash 5-tuple across queues
  kMacTable,     // dst MAC -> queue mapping; falls back to RSS on miss
};

class Steering {
 public:
  Steering(SteeringMode mode, uint16_t num_queues);

  // Chooses the rx queue for a frame. Also stamps the packet's flow_hash
  // annotation when the frame parses as IPv4 (like hardware RSS does).
  uint16_t SelectRxQueue(Packet* p);

  // Installs dst-MAC -> queue (kMacTable mode).
  void AddMacRule(const MacAddress& mac, uint16_t queue);

  SteeringMode mode() const { return mode_; }
  uint16_t num_queues() const { return num_queues_; }

 private:
  struct MacHasher {
    size_t operator()(const MacAddress& m) const {
      uint64_t v = 0;
      for (uint8_t b : m) {
        v = (v << 8) | b;
      }
      v *= 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(v ^ (v >> 32));
    }
  };

  SteeringMode mode_;
  uint16_t num_queues_;
  std::unordered_map<MacAddress, uint16_t, MacHasher> mac_rules_;
};

}  // namespace rb

#endif  // RB_NETDEV_STEERING_HPP_
