// Software model of a multi-queue NIC port.
//
// A NicPort has `num_rx_queues` receive and `num_tx_queues` transmit
// descriptor rings (SPSC, lock-free — the §4.2 driver), a steering engine
// that picks the rx queue for each delivered frame, and NIC-driven
// batching: frames delivered to an rx queue are staged and become visible
// to the polling core only in batches of `kn` descriptors (the paper's
// extension that packs kn 16-byte descriptors into PCIe transactions,
// Table 1). A configurable staging timeout implements the latency-bounding
// feature §4.2 mentions as future work.
//
// PCIe traffic is accounted per the PCIe 1.1 parameters the paper quotes:
// descriptors are 16 B, the maximum transaction payload is 256 B, so at
// most 16 descriptors fit one transaction.
#ifndef RB_NETDEV_NIC_HPP_
#define RB_NETDEV_NIC_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "netdev/ring.hpp"
#include "netdev/steering.hpp"
#include "packet/batch.hpp"
#include "packet/packet.hpp"
#include "telemetry/metrics.hpp"

namespace rb {

struct NicConfig {
  uint16_t num_rx_queues = 1;
  uint16_t num_tx_queues = 1;
  size_t ring_entries = 512;          // descriptors per queue
  uint16_t kn = 1;                    // NIC-driven batching factor (1 = off)
  SimTime batch_timeout = 0;          // 0 = no timeout (paper's prototype)
  SteeringMode steering = SteeringMode::kRss;
  double line_rate_bps = 10e9;        // external port line rate R
};

// Accounting constants from the paper (§4.1, Table 1 caption).
constexpr uint32_t kDescriptorBytes = 16;
constexpr uint32_t kPcieMaxPayload = 256;
constexpr uint32_t kMaxDescriptorsPerPcieTxn = kPcieMaxPayload / kDescriptorBytes;  // 16

// Shared by every queue on a port, so the adders use relaxed atomics
// (queues are polled by different cores under ThreadScheduler).
struct PcieCounters {
  std::atomic<uint64_t> transactions{0};
  std::atomic<uint64_t> payload_bytes{0};

  void AddDescriptorBatch(uint32_t descriptors);
  void AddPacketData(uint32_t bytes);
  void Merge(const PcieCounters& o) {
    transactions.fetch_add(o.transactions.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    payload_bytes.fetch_add(o.payload_bytes.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  }
};

class NicPort {
 public:
  explicit NicPort(const NicConfig& config);

  // --- receive side (called by the wire / traffic source) ---

  // Delivers a frame arriving on the wire at simulated time `now`.
  // Steers it to an rx queue and stages it for NIC-driven batching; a
  // frame whose ring is full at commit time is dropped and counted in
  // rx_counters().drops (as a NIC with no free descriptors would).
  // Always takes ownership of `p`. Stamps the ingress cycle count
  // (telemetry::ReadCycles) for the measured latency plane unless
  // telemetry::SetIngressStampEnabled(false) has shed the stamp.
  void Deliver(Packet* p, SimTime now);

  // Batch variant: steers and stages every packet in `batch` (ownership
  // transfers; the batch is left empty). Semantically identical to calling
  // Deliver per packet — the same staging thresholds fire at the same
  // points — but lets a bulk injector hand a whole burst across without
  // re-entering the per-packet path.
  void DeliverBatch(PacketBatch* batch, SimTime now);

  // Flushes any staged descriptors whose timeout expired (no-op when
  // batch_timeout == 0). Called periodically by the simulation loop.
  void FlushStaged(SimTime now);
  // Unconditionally flushes all staged descriptors (end of experiment).
  void FlushAllStaged();

  // --- polling core side ---

  // Pops up to `max` packets from rx queue `q`. Returns count. The caller
  // owns the returned packets.
  size_t PollRx(uint16_t q, Packet** out, size_t max);

  // Enqueues a packet for transmission on tx queue `q`. Returns false (and
  // counts a drop) when the ring is full. Accounts PCIe descriptor+data.
  bool Transmit(uint16_t q, Packet* p);

  // --- wire side (transmit drain) ---

  // Pops up to `max` packets the NIC would put on the wire (round-robins
  // across tx queues, as the hardware scheduler does).
  size_t DrainTx(Packet** out, size_t max);

  // --- telemetry ---

  // Mirrors rx/tx packet/byte/drop counts into registry counters under
  // "<prefix>nic/..." and tracks per-ring occupancy high-water gauges
  // ("<prefix>nic/rxq<q>/occupancy_hw", ".../txq<q>/occupancy_hw").
  // No-op when telemetry is disabled; unbound ports pay only null checks.
  void BindTelemetry(telemetry::MetricRegistry* registry, const std::string& prefix);

  // --- introspection ---
  Steering& steering() { return steering_; }
  const NicConfig& config() const { return config_; }
  uint16_t num_rx_queues() const { return config_.num_rx_queues; }
  uint16_t num_tx_queues() const { return config_.num_tx_queues; }

  const PortCounters& rx_counters() const { return rx_; }
  const PortCounters& tx_counters() const { return tx_; }
  const PcieCounters& pcie_counters() const { return pcie_; }
  uint64_t rx_queue_depth(uint16_t q) const { return rx_rings_[q]->size(); }
  uint64_t staged_depth(uint16_t q) const { return staged_[q].pkts.size(); }

 private:
  struct Staged {
    std::vector<Packet*> pkts;
    SimTime oldest = 0;
  };

  // Deliver with the ingress cycle stamp hoisted out (DeliverBatch reads
  // the cycle counter once per burst, not once per frame).
  void DeliverStamped(Packet* p, SimTime now, uint64_t ingress_cycles);
  void CommitStaged(uint16_t q);

  NicConfig config_;
  Steering steering_;
  std::vector<std::unique_ptr<SpscRing<Packet*>>> rx_rings_;
  std::vector<std::unique_ptr<SpscRing<Packet*>>> tx_rings_;
  std::vector<Staged> staged_;
  PortCounters rx_;
  PortCounters tx_;
  PcieCounters pcie_;
  uint16_t tx_drain_rr_ = 0;

  // Registry mirrors; null when telemetry is unbound.
  struct Telemetry {
    telemetry::Counter* rx_packets = nullptr;
    telemetry::Counter* rx_bytes = nullptr;
    telemetry::Counter* rx_drops = nullptr;
    telemetry::Counter* tx_packets = nullptr;
    telemetry::Counter* tx_bytes = nullptr;
    telemetry::Counter* tx_drops = nullptr;
    std::vector<telemetry::Gauge*> rx_ring_hw;  // per rx queue
    std::vector<telemetry::Gauge*> tx_ring_hw;  // per tx queue
  };
  std::unique_ptr<Telemetry> tele_;
};

}  // namespace rb

#endif  // RB_NETDEV_NIC_HPP_
