// Queue primitives for the software NIC.
//
// SpscRing is a lock-free single-producer/single-consumer ring buffer —
// the data structure behind each NIC descriptor queue once the §4.2 rule
// "each network queue is accessed by a single core" holds. LockedRing is
// the deliberately-worse alternative (one mutex around a deque) used to
// demonstrate what shared queues cost; the Fig 6/7 models quantify that
// cost analytically and the functional tests exercise both.
#ifndef RB_NETDEV_RING_HPP_
#define RB_NETDEV_RING_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "common/log.hpp"

namespace rb {

// Lock-free SPSC bounded ring. Capacity is rounded up to a power of two.
// Producer calls TryPush, consumer calls TryPop; size() is approximate when
// both sides run concurrently.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  bool TryPush(T item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      return false;  // full
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return false;  // empty
    }
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Pops up to `max` items with one head/tail synchronization: a single
  // acquire of head_, a straight copy of the available slots, one release
  // of tail_ — instead of two atomics per item through TryPop.
  size_t TryPopBurst(T* out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    size_t avail = head - tail;
    if (avail > max) {
      avail = max;
    }
    for (size_t i = 0; i < avail; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    if (avail > 0) {
      tail_.store(tail + avail, std::memory_order_release);
    }
    return avail;
  }

  size_t size() const {
    // Read tail before head: the producer only advances head_, so a head
    // sampled after tail can never be older than it and the difference
    // cannot underflow. (Reading head first let a concurrent consumer
    // advance tail_ past the stale head, wrapping size() to ~SIZE_MAX and
    // poisoning occupancy gauges.) Churn between the two loads can still
    // inflate the difference past the ring size, so clamp into
    // [0, capacity] — size() is approximate under concurrency, but always
    // a plausible occupancy.
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t diff = head > tail ? head - tail : 0;
    return diff > mask_ + 1 ? mask_ + 1 : diff;
  }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return mask_ + 1; }

 private:
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  size_t mask_;
  std::unique_ptr<T[]> slots_;
};

// Mutex-protected MPMC queue; models the pre-multi-queue world where every
// core locks the single port queue.
template <typename T>
class LockedRing {
 public:
  explicit LockedRing(size_t capacity) : capacity_(capacity) {}

  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    return true;
  }

  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<T> items_;
};

}  // namespace rb

#endif  // RB_NETDEV_RING_HPP_
