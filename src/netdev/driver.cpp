#include "netdev/driver.hpp"

#include "common/log.hpp"

namespace rb {

Driver::Driver(NicPort* port, uint16_t rx_queue, const DriverConfig& config)
    : port_(port), rx_queue_(rx_queue), config_(config) {
  RB_CHECK(port != nullptr);
  RB_CHECK(config.kp >= 1);
  RB_CHECK(rx_queue < port->num_rx_queues());
}

size_t Driver::Poll(std::vector<Packet*>* out) {
  polls_++;
  Packet* burst[256];
  size_t want = std::min<size_t>(config_.kp, std::size(burst));
  size_t n = port_->PollRx(rx_queue_, burst, want);
  if (n == 0) {
    empty_polls_++;
    return 0;
  }
  packets_ += n;
  out->insert(out->end(), burst, burst + n);
  return n;
}

}  // namespace rb
