#include "netdev/driver.hpp"

#include "common/log.hpp"
#include "telemetry/profiler.hpp"

namespace rb {

namespace {
#if defined(RB_PROFILE) && RB_PROFILE
// One shared scope for all rx polling loops: the per-(port,queue) split is
// already visible through the enclosing task/FromDevice@N scopes.
telemetry::ScopeId RxPollScope() {
  static const telemetry::ScopeId id = telemetry::InternScopeName("netdev/rx_poll");
  return id;
}
#endif
}  // namespace

Driver::Driver(NicPort* port, uint16_t rx_queue, const DriverConfig& config)
    : port_(port), rx_queue_(rx_queue), config_(config) {
  RB_CHECK(port != nullptr);
  RB_CHECK(config.kp >= 1);
  RB_CHECK(rx_queue < port->num_rx_queues());
}

size_t Driver::Poll(PacketBatch* out, size_t max) {
#if defined(RB_PROFILE) && RB_PROFILE
  RB_PROF_SCOPE(RxPollScope());
#endif
  polls_++;
  size_t want = std::min<size_t>(std::min<size_t>(config_.kp, max), out->room());
  if (want == 0) {
    empty_polls_++;
    return 0;
  }
  Packet** fill = out->tail();
  size_t n = port_->PollRx(rx_queue_, fill, want);
  if (n == 0) {
    empty_polls_++;
    return 0;
  }
  out->CommitAppended(static_cast<uint32_t>(n));
  packets_ += n;
#if defined(RB_PROFILE) && RB_PROFILE
  if (telemetry::Profiler* prof = telemetry::CurrentProfiler()) {
    uint64_t bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      bytes += fill[i]->length();
    }
    prof->AddWork(n, bytes);
  }
#endif
  return n;
}

size_t Driver::Poll(std::vector<Packet*>* out) {
  PacketBatch burst;
  size_t n = Poll(&burst);
  out->insert(out->end(), burst.begin(), burst.end());
  burst.Clear();
  return n;
}

}  // namespace rb
