#include "netdev/steering.hpp"

#include "common/log.hpp"

namespace rb {

Steering::Steering(SteeringMode mode, uint16_t num_queues) : mode_(mode), num_queues_(num_queues) {
  RB_CHECK(num_queues >= 1);
}

uint16_t Steering::SelectRxQueue(Packet* p) {
  // Stamp the RSS hash whenever the frame parses; hardware computes it for
  // every received IPv4 frame regardless of the steering policy in use.
  FlowKey key;
  bool parsed = ExtractFlowKey(*p, &key);
  if (parsed) {
    p->set_flow_hash(FlowHash32(key));
  }
  switch (mode_) {
    case SteeringMode::kSingleQueue:
      return 0;
    case SteeringMode::kRss:
      return parsed ? static_cast<uint16_t>(p->flow_hash() % num_queues_) : 0;
    case SteeringMode::kMacTable: {
      if (p->length() >= EthernetView::kSize) {
        EthernetView eth{p->data()};
        auto it = mac_rules_.find(eth.dst());
        if (it != mac_rules_.end()) {
          return it->second;
        }
      }
      return parsed ? static_cast<uint16_t>(p->flow_hash() % num_queues_) : 0;
    }
  }
  return 0;
}

void Steering::AddMacRule(const MacAddress& mac, uint16_t queue) {
  RB_CHECK(queue < num_queues_);
  mac_rules_[mac] = queue;
}

}  // namespace rb
