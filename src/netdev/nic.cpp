#include "netdev/nic.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "packet/pool.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"

namespace rb {

void PcieCounters::AddDescriptorBatch(uint32_t descriptors) {
  uint32_t txns = (descriptors + kMaxDescriptorsPerPcieTxn - 1) / kMaxDescriptorsPerPcieTxn;
  transactions.fetch_add(txns, std::memory_order_relaxed);
  payload_bytes.fetch_add(uint64_t{descriptors} * kDescriptorBytes, std::memory_order_relaxed);
}

void PcieCounters::AddPacketData(uint32_t bytes) {
  transactions.fetch_add((bytes + kPcieMaxPayload - 1) / kPcieMaxPayload,
                         std::memory_order_relaxed);
  payload_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

NicPort::NicPort(const NicConfig& config)
    : config_(config), steering_(config.steering, config.num_rx_queues) {
  RB_CHECK(config.num_rx_queues >= 1 && config.num_tx_queues >= 1);
  RB_CHECK(config.kn >= 1);
  for (uint16_t q = 0; q < config.num_rx_queues; ++q) {
    rx_rings_.push_back(std::make_unique<SpscRing<Packet*>>(config.ring_entries));
  }
  for (uint16_t q = 0; q < config.num_tx_queues; ++q) {
    tx_rings_.push_back(std::make_unique<SpscRing<Packet*>>(config.ring_entries));
  }
  staged_.resize(config.num_rx_queues);
}

void NicPort::BindTelemetry(telemetry::MetricRegistry* registry, const std::string& prefix) {
  if (!telemetry::Enabled() || registry == nullptr) {
    return;
  }
  tele_ = std::make_unique<Telemetry>();
  tele_->rx_packets = registry->GetCounter(prefix + "rx_packets");
  tele_->rx_bytes = registry->GetCounter(prefix + "rx_bytes");
  tele_->rx_drops = registry->GetCounter(prefix + "rx_drops");
  tele_->tx_packets = registry->GetCounter(prefix + "tx_packets");
  tele_->tx_bytes = registry->GetCounter(prefix + "tx_bytes");
  tele_->tx_drops = registry->GetCounter(prefix + "tx_drops");
  for (uint16_t q = 0; q < config_.num_rx_queues; ++q) {
    tele_->rx_ring_hw.push_back(registry->GetGauge(Format("%srxq%u/occupancy_hw", prefix.c_str(), q)));
  }
  for (uint16_t q = 0; q < config_.num_tx_queues; ++q) {
    tele_->tx_ring_hw.push_back(registry->GetGauge(Format("%stxq%u/occupancy_hw", prefix.c_str(), q)));
  }
}

void NicPort::Deliver(Packet* p, SimTime now) {
  DeliverStamped(p, now,
                 telemetry::IngressStampEnabled() ? telemetry::ReadCycles() : 0);
}

void NicPort::DeliverStamped(Packet* p, SimTime now, uint64_t ingress_cycles) {
  p->set_arrival_time(now);
  p->set_ingress_cycles(ingress_cycles);
  uint16_t q = steering_.SelectRxQueue(p);
  Staged& st = staged_[q];
  if (st.pkts.empty()) {
    st.oldest = now;
  }
  st.pkts.push_back(p);
  if (st.pkts.size() >= config_.kn) {
    CommitStaged(q);
  } else if (config_.batch_timeout > 0 && now - st.oldest >= config_.batch_timeout) {
    CommitStaged(q);
  }
}

void NicPort::DeliverBatch(PacketBatch* batch, SimTime now) {
  const uint32_t n = batch->size();
  // One cycle read covers the whole burst: the frames of one wire batch
  // arrive back-to-back, so per-packet rdtsc would only measure the
  // stamping loop itself.
  const uint64_t ingress_cycles =
      telemetry::IngressStampEnabled() ? telemetry::ReadCycles() : 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (i + 1 < n) {
      // Steering reads the flow-hash annotation of the next packet; its
      // metadata line may have been evicted by this packet's DMA modeling.
      PrefetchForRead((*batch)[i + 1]);
    }
    DeliverStamped((*batch)[i], now, ingress_cycles);
  }
  batch->Clear();
}

void NicPort::CommitStaged(uint16_t q) {
  Staged& st = staged_[q];
  if (st.pkts.empty()) {
    return;
  }
  // One batched descriptor transfer for the whole group, then the packet
  // data DMA per frame.
  pcie_.AddDescriptorBatch(static_cast<uint32_t>(st.pkts.size()));
  for (Packet* p : st.pkts) {
    pcie_.AddPacketData(p->length());
    if (rx_rings_[q]->TryPush(p)) {
      rx_.AddPacket(p->wire_bytes());
      if (tele_ != nullptr) {
        tele_->rx_packets->Inc();
        tele_->rx_bytes->Add(p->wire_bytes());
        tele_->rx_ring_hw[q]->UpdateMax(static_cast<double>(rx_rings_[q]->size()));
      }
    } else {
      rx_.AddDrop();
      // NIC had no free rx descriptors — the event the paper's loss-free
      // envelope is defined against; a = rx queue index.
      static const telemetry::ScopeId kNicScope = telemetry::InternScopeName("nic/rx");
      telemetry::FrRecord(telemetry::FrEvent::kRxOverflow, kNicScope, q, 1);
      if (tele_ != nullptr) {
        tele_->rx_drops->Inc();
      }
      PacketPool::Release(p);
    }
  }
  st.pkts.clear();
}

void NicPort::FlushStaged(SimTime now) {
  if (config_.batch_timeout <= 0) {
    return;
  }
  for (uint16_t q = 0; q < config_.num_rx_queues; ++q) {
    Staged& st = staged_[q];
    if (!st.pkts.empty() && now - st.oldest >= config_.batch_timeout) {
      CommitStaged(q);
    }
  }
}

void NicPort::FlushAllStaged() {
  for (uint16_t q = 0; q < config_.num_rx_queues; ++q) {
    CommitStaged(q);
  }
}

size_t NicPort::PollRx(uint16_t q, Packet** out, size_t max) {
  RB_CHECK(q < config_.num_rx_queues);
  return rx_rings_[q]->TryPopBurst(out, max);
}

bool NicPort::Transmit(uint16_t q, Packet* p) {
  RB_CHECK(q < config_.num_tx_queues);
  // Descriptor + data cross the PCIe bus on transmit too. The driver's
  // NIC-driven batching applies to descriptor writes; we charge the
  // amortized cost assuming the configured kn (the driver groups kn
  // descriptor writebacks per transaction on average).
  pcie_.AddPacketData(p->length());
  if (!tx_rings_[q]->TryPush(p)) {
    tx_.AddDrop();
    if (tele_ != nullptr) {
      tele_->tx_drops->Inc();
    }
    PacketPool::Release(p);
    return false;
  }
  tx_.AddPacket(p->wire_bytes());
  if (tele_ != nullptr) {
    tele_->tx_packets->Inc();
    tele_->tx_bytes->Add(p->wire_bytes());
    tele_->tx_ring_hw[q]->UpdateMax(static_cast<double>(tx_rings_[q]->size()));
  }
  return true;
}

size_t NicPort::DrainTx(Packet** out, size_t max) {
  // One TryPopBurst per ring drains a queue's whole backlog under a single
  // head/tail synchronization, instead of two atomics per packet while
  // ping-ponging between rings. Fairness is per-queue rather than
  // per-packet: the starting ring rotates across calls.
  size_t n = 0;
  for (uint16_t visited = 0; visited < config_.num_tx_queues && n < max;
       ++visited) {
    n += tx_rings_[tx_drain_rr_]->TryPopBurst(&out[n], max - n);
    // Wrap without the integer divide a runtime '%' would cost.
    tx_drain_rr_ = static_cast<uint16_t>(
        tx_drain_rr_ + 1 == config_.num_tx_queues ? 0 : tx_drain_rr_ + 1);
  }
  return n;
}

}  // namespace rb
