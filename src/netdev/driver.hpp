// Poll-mode driver binding: the software analogue of the paper's extended
// 10 GbE driver. A Driver instance fronts one (port, rx-queue) pair for
// one polling core and implements poll-driven batching: each Poll() call
// retrieves up to `kp` packets (kp = 32 is Click's default maximum).
//
// The driver also keeps the bookkeeping the §5.3 methodology needs: total
// polls, empty polls, and packets retrieved, so the "factor out empty-poll
// cycles" correction (ce × Er) can be computed exactly as the authors do.
#ifndef RB_NETDEV_DRIVER_HPP_
#define RB_NETDEV_DRIVER_HPP_

#include <cstdint>
#include <vector>

#include "netdev/nic.hpp"
#include "packet/batch.hpp"

namespace rb {

struct DriverConfig {
  uint16_t kp = 32;  // packets per poll (1 = no poll-driven batching)
};

class Driver {
 public:
  Driver(NicPort* port, uint16_t rx_queue, const DriverConfig& config);

  // Polls the bound rx queue; appends up to kp packets to `out`.
  // Returns the number retrieved (0 counts as an empty poll). The batch
  // overload is the hot path (no heap traffic); the vector overload
  // remains for harness code. `max` further caps the burst below kp —
  // backpressure-aware pollers (FromDevice) pass the downstream headroom
  // so overflow packets stay in the NIC ring instead of being retrieved
  // only to be tail-dropped at a full queue.
  size_t Poll(PacketBatch* out) { return Poll(out, config_.kp); }
  size_t Poll(PacketBatch* out, size_t max);
  size_t Poll(std::vector<Packet*>* out);

  // Sends on the bound port's tx queue `q`.
  bool Send(uint16_t tx_queue, Packet* p) { return port_->Transmit(tx_queue, p); }

  NicPort* port() { return port_; }
  uint16_t rx_queue() const { return rx_queue_; }
  const DriverConfig& config() const { return config_; }

  uint64_t polls() const { return polls_; }
  uint64_t empty_polls() const { return empty_polls_; }
  uint64_t packets() const { return packets_; }
  // Average packets per non-empty poll: the realized poll batch size.
  double mean_burst() const {
    uint64_t nonempty = polls_ - empty_polls_;
    return nonempty ? static_cast<double>(packets_) / static_cast<double>(nonempty) : 0.0;
  }

 private:
  NicPort* port_;
  uint16_t rx_queue_;
  DriverConfig config_;
  uint64_t polls_ = 0;
  uint64_t empty_polls_ = 0;
  uint64_t packets_ = 0;
};

}  // namespace rb

#endif  // RB_NETDEV_DRIVER_HPP_
