#include "model/throughput.hpp"

#include <limits>

#include "common/log.hpp"

namespace rb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ComponentLoads LoadsFor(const ThroughputConfig& config) {
  AppProfile profile = AppProfile::For(config.app);
  ComponentLoads loads;
  double bytes = config.frame_bytes;
  loads.cpu_cycles = profile.cpu_cycles.At(bytes) + BatchingCyclesDelta(config.batching) +
                     config.extra_cycles_per_packet;
  loads.cpu_cycles *= config.spec.fsb_cpu_stall_factor;
  loads.memory_bytes = profile.memory_bytes.At(bytes);
  loads.io_bytes = profile.io_bytes.At(bytes);
  loads.pcie_bytes = profile.pcie_bytes.At(bytes);
  loads.inter_socket_bytes = profile.inter_socket_bytes.At(bytes);
  return loads;
}

ThroughputResult SolveThroughput(const ThroughputConfig& config) {
  RB_CHECK(config.frame_bytes >= 64);
  const ServerSpec& spec = config.spec;
  ThroughputResult r;
  r.per_packet = LoadsFor(config);

  int cores = config.cores_used < 0 ? spec.total_cores() : config.cores_used;
  RB_CHECK(cores >= 1);
  double cycles_per_sec = cores * spec.clock_hz;

  r.cpu_pps = cycles_per_sec / r.per_packet.cpu_cycles;
  r.memory_pps = spec.memory.empirical_bps / 8.0 / r.per_packet.memory_bytes;
  r.io_pps = spec.io.empirical_bps > 0 ? spec.io.empirical_bps / 8.0 / r.per_packet.io_bytes : kInf;
  r.pcie_pps = config.ignore_pcie
                   ? kInf
                   : spec.pcie.empirical_bps / 8.0 / r.per_packet.pcie_bytes;
  r.inter_socket_pps = spec.inter_socket.empirical_bps > 0
                           ? spec.inter_socket.empirical_bps / 8.0 / r.per_packet.inter_socket_bytes
                           : kInf;
  r.nic_input_pps = (config.nic_input_cap && !config.ignore_pcie)
                        ? spec.max_input_bps() / (8.0 * config.frame_bytes)
                        : kInf;

  // Shared single queue: all polling cores serialize on the queue lock.
  if (!config.multi_queue && cores > 1) {
    double serialized = SharedQueueSerializedCycles(config.batching, cores);
    r.shared_queue_pps = serialized > 0 ? spec.clock_hz / serialized : kInf;
  } else {
    r.shared_queue_pps = kInf;
  }

  // Shared-bus architecture: memory and I/O traffic contend on one bus.
  if (spec.shared_bus) {
    double bus_bytes = r.per_packet.memory_bytes + r.per_packet.io_bytes;
    r.fsb_pps = spec.fsb_bps / 8.0 / bus_bytes;
  } else {
    r.fsb_pps = kInf;
  }

  struct Candidate {
    double pps;
    const char* name;
  };
  const Candidate candidates[] = {
      {r.cpu_pps, "cpu"},
      {r.memory_pps, "memory"},
      {r.io_pps, "socket-io"},
      {r.pcie_pps, "pcie"},
      {r.inter_socket_pps, "inter-socket"},
      {r.nic_input_pps, "nic-input"},
      {r.shared_queue_pps, "queue-lock"},
      {r.fsb_pps, "front-side-bus"},
  };
  r.pps = kInf;
  for (const auto& c : candidates) {
    if (c.pps < r.pps) {
      r.pps = c.pps;
      r.bottleneck = c.name;
    }
  }
  r.bps = r.pps * config.frame_bytes * 8.0;
  return r;
}

}  // namespace rb
