// Hardware specifications of the servers the paper evaluates (§4.1, §5.3,
// Table 2): the dual-socket Nehalem prototype, the shared-bus Xeon
// comparator, and the projected next-generation 4-socket part.
//
// Capacities carry both a *nominal* rating and an *empirical* ceiling
// (what a targeted micro-benchmark could actually extract — Table 2); the
// throughput solver checks measured per-packet loads against the
// empirical bounds, exactly as §5.3 does.
#ifndef RB_MODEL_SERVER_SPEC_HPP_
#define RB_MODEL_SERVER_SPEC_HPP_

#include <string>

namespace rb {

struct Capacity {
  double nominal_bps = 0;
  double empirical_bps = 0;
};

struct ServerSpec {
  std::string name;

  int sockets = 2;
  int cores_per_socket = 4;
  double clock_hz = 2.8e9;

  Capacity memory;        // aggregate memory-bus bandwidth
  Capacity inter_socket;  // QPI-style socket interconnect
  Capacity io;            // socket <-> I/O-hub links
  Capacity pcie;          // aggregate PCIe payload bandwidth

  // Shared-bus (front-side-bus) architecture? When true, memory and I/O
  // traffic share one bus and CPU cycles inflate with bus stalls (§4.2
  // "multi-core alone is not enough").
  bool shared_bus = false;
  double fsb_bps = 0;            // shared-bus empirical bandwidth
  double fsb_cpu_stall_factor = 1.0;  // cycles/packet multiplier from bus waits

  // NIC complement: slots * per-NIC PCIe ceiling gives the input cap the
  // paper hits at 24.6 Gbps (2 NICs x 12.3 Gbps each, §4.1).
  int nic_slots = 2;
  double per_nic_input_bps = 12.3e9;

  int total_cores() const { return sockets * cores_per_socket; }
  double total_cycles_per_sec() const { return total_cores() * clock_hz; }
  double max_input_bps() const { return nic_slots * per_nic_input_bps; }

  // The paper's evaluation server: dual-socket, 4 cores @ 2.8 GHz each,
  // two dual-port 10 GbE NICs on PCIe 1.1 x8 (Table 2 bounds).
  static ServerSpec Nehalem();
  // The 8-core 2.4 GHz shared-bus Xeon of §4.2 / Fig 7.
  static ServerSpec SharedBusXeon();
  // §5.3 item (4): 4 sockets x 8 cores — 4x CPU, 2x memory, 2x I/O.
  static ServerSpec NextGenNehalem();
};

}  // namespace rb

#endif  // RB_MODEL_SERVER_SPEC_HPP_
