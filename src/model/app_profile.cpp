#include "model/app_profile.hpp"

#include "common/log.hpp"

namespace rb {
namespace {

// --- calibration anchors (all from the paper) ---

// Nehalem total cycles/s: 8 cores x 2.8 GHz.
constexpr double kCycles = 8 * 2.8e9;

// Fig 8 bottom, 64 B: forwarding 18.96 Mpps, routing 6.35 Gbps, IPsec
// 1.4 Gbps.
constexpr double kFwdCycles64 = kCycles / 18.96e6;            // ~1181
constexpr double kRtrCycles64 = kCycles * 64 * 8 / 6.35e9;    // ~1806
constexpr double kIpsecCycles64 = kCycles * 64 * 8 / 1.4e9;   // ~8192

// §5.3 item (2): the 1024 B per-packet CPU load is 1.6x the 64 B load
// (for forwarding) -> per-byte cycles.
constexpr double kCpuPerByte = (1.6 - 1.0) * kFwdCycles64 / (1024 - 64);  // ~0.738

// IPsec per-byte cycles from the Abilene anchor: 4.45 Gbps at a ~730 B
// mean implies ~29.4 k cycles/packet at 730 B.
constexpr double kAbileneMean = 729.6;
constexpr double kIpsecCyclesAbilene = kCycles * kAbileneMean * 8 / 4.45e9;
constexpr double kIpsecPerByte = (kIpsecCyclesAbilene - kIpsecCycles64) / (kAbileneMean - 64);

// Memory: 64 B forwarding load ~780 B/packet (DMA write + CPU read/write +
// descriptor and ring bookkeeping), 1024 B = 6x ->
//   fixed + 64 b = 780 ; fixed + 1024 b = 6 * 780  =>  b ~ 4.06, f ~ 520.
constexpr double kMemFwd64 = 780.0;
// Solving f + 1024b = 6(f + 64b) gives 640b = 5f => f = 128b; combined
// with f + 64b = 780 => b = 780/192, f = 128b.
constexpr double kMemPerByteFinal = kMemFwd64 / 192.0;            // ~4.06
constexpr double kMemFixed = 128.0 * kMemPerByteFinal;            // ~520

// Routing memory: the next-gen projection (19.9 Gbps with 2x memory)
// implies routing's total memory load is ~1684 B/packet at 64 B: random
// lookups over a 256 K-entry table miss LLC and add ~900 B/packet of
// cache-line traffic on top of the forwarding load.
constexpr double kMemRtrExtra = 1684.0 - kMemFwd64;               // ~904

// I/O (socket <-> I/O hub): packet crosses twice plus descriptors:
// 2 x (64 + 16) = 160 B/packet at 64 B; 1024 B = 11x ->
//   f + 1024b = 11(f + 64b) => 320b = 10f => f = 32b; f + 64b = 160
//   => b = 160/96 ~ 1.667, f ~ 53.3.
constexpr double kIoPerByte = 160.0 / 96.0;
constexpr double kIoFixed = 32.0 * kIoPerByte;

// PCIe: rx DMA + tx DMA of the frame plus descriptor traffic (16 B each
// way, amortized over kn=16 batching to ~1 B + transaction framing):
// ~2 x (bytes + 4). Calibrated so the PCIe empirical ceiling (50.8 Gbps,
// both directions of both NICs) sits just above the observed 24.6 Gbps
// one-way input cap, as in the testbed.
constexpr double kPcieFixed = 8.0;
constexpr double kPciePerByte = 2.0;

// Inter-socket: §4.2 measures ~23% of memory accesses remote when running
// on the far socket; with default placement ~25% of memory traffic
// crosses QPI.
constexpr double kInterSocketShare = 0.25;

}  // namespace

AppProfile AppProfile::For(App app) {
  AppProfile p;
  p.app = app;

  // Shared streaming loads (identical bookkeeping for all apps).
  p.io_bytes = {kIoFixed, kIoPerByte};
  p.pcie_bytes = {kPcieFixed, kPciePerByte};

  switch (app) {
    case App::kMinimalForwarding:
      p.cpu_cycles = {kFwdCycles64 - 64 * kCpuPerByte, kCpuPerByte};
      p.memory_bytes = {kMemFixed, kMemPerByteFinal};
      p.instructions_per_packet_64 = 1033;
      p.cycles_per_instruction_64 = 1.19;
      break;
    case App::kIpRouting:
      p.cpu_cycles = {kRtrCycles64 - 64 * kCpuPerByte, kCpuPerByte};
      p.memory_bytes = {kMemFixed + kMemRtrExtra, kMemPerByteFinal};
      p.instructions_per_packet_64 = 1512;
      p.cycles_per_instruction_64 = 1.23;
      break;
    case App::kIpsec:
      p.cpu_cycles = {kIpsecCycles64 - 64 * kIpsecPerByte, kIpsecPerByte};
      // Encryption is compute-bound; memory traffic adds the in-place
      // ciphertext write (~1 extra traversal).
      p.memory_bytes = {kMemFixed, kMemPerByteFinal + 1.0};
      p.instructions_per_packet_64 = 14221;
      p.cycles_per_instruction_64 = 0.55;
      break;
  }
  p.inter_socket_bytes = {p.memory_bytes.fixed * kInterSocketShare,
                          p.memory_bytes.per_byte * kInterSocketShare};
  return p;
}

}  // namespace rb
