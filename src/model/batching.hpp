// The batching and queue-access cost models.
//
// Per-packet bookkeeping (reading/updating socket-buffer descriptors and
// ring buffers) is amortized by poll-driven batching (kp packets per poll)
// and NIC-driven batching (kn descriptors per PCIe transaction). Table 1
// gives three anchor points at 64 B minimal forwarding on the 8-core
// Nehalem:
//     kp=1,  kn=1  -> 1.46 Gbps (2.85 Mpps)  => ~7862 cycles/packet
//     kp=32, kn=1  -> 4.97 Gbps (9.71 Mpps)  => ~2307 cycles/packet
//     kp=32, kn=16 -> 9.77 Gbps (19.1 Mpps)  => ~1174 cycles/packet
// We model total cycles as  base + A/kp + B/kn  and solve:
//     B * (1 - 1/16) = 2307 - 1174  => B ~ 1209
//     A * (1 - 1/32) = 7862 - 2307  => A ~ 5727
// `base` is the AppProfile cpu_cycles curve (which is anchored at the
// default kp=32, kn=16 configuration), so the deltas below are relative
// to that default.
//
// Queue-access model (Fig 6/7): when a queue is shared by multiple cores,
// every access takes a lock whose critical section (pointer updates plus
// the cache-line ping-pong of the lock and ring indices) serializes the
// cores. The serialized section per packet, S(kp), shrinks with batching:
//     S(kp) = kLockCyclesFloor + kLockCyclesPerPoll / kp
// calibrated so single-queue throughput matches Fig 7 (2.83 Mpps without
// batching, ~9.5 Mpps with).
#ifndef RB_MODEL_BATCHING_HPP_
#define RB_MODEL_BATCHING_HPP_

#include <cstdint>

namespace rb {

struct BatchingConfig {
  uint16_t kp = 32;  // poll-driven batch (Click burst)
  uint16_t kn = 16;  // NIC-driven descriptor batch
};

// Extra CPU cycles per packet relative to the default (kp=32, kn=16).
double BatchingCyclesDelta(const BatchingConfig& config);

// Cycles of the per-packet serialized critical section when `sharers`
// cores contend on a single queue (0 when sharers <= 1).
double SharedQueueSerializedCycles(const BatchingConfig& config, int sharers);

// Model constants, exposed for tests and the ablation bench.
inline constexpr double kPollBatchCycles = 5555.0 * 32.0 / 31.0;   // A ~ 5734
inline constexpr double kNicBatchCycles = 1133.0 * 16.0 / 15.0;    // B ~ 1209
inline constexpr double kLockCyclesFloor = 273.0;
inline constexpr double kLockCyclesPerPoll = 715.0;

}  // namespace rb

#endif  // RB_MODEL_BATCHING_HPP_
