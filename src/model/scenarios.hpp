// The Fig 6 "toy scenario" model: per-forwarding-path (FP) rates for the
// six core/queue layouts the paper compares when deciding the two rules
// ("one core per queue", "one core per packet").
//
// The model charges each packet the cycles of the work its layout implies:
//   * base processing (poll + forward + transmit) on one core,
//   * a synchronization handoff when a packet crosses cores that share an
//     L3 cache (scenario a),
//   * handoff + cache-miss penalty when it crosses sockets (scenario a'),
//   * a contended-lock penalty when multiple cores share a queue
//     (scenarios c and e).
// Constants are calibrated to the paper's reported rates (1.7 Gbps/FP
// parallel; 1.2 pipelined same-L3 = -29%; 0.6 across sockets = -64%;
// overlapping paths 0.7 without multi-queue vs 1.7 with; splitter-core
// layouts ~1/3 of their multi-queue equivalents).
#ifndef RB_MODEL_SCENARIOS_HPP_
#define RB_MODEL_SCENARIOS_HPP_

#include <string>
#include <vector>

namespace rb {

enum class Fig6Scenario {
  kPipelineSameL3,     // (a) 2 cores, shared L3: poll core -> process core
  kPipelineCrossL3,    // (a') 2 cores on different sockets
  kParallel,           // (b) 1 core does everything for its FP
  kSplitterNoMq,       // (c) 1 core polls+splits to 2 processing cores
  kSplitterWithMq,     // (d) same cores, multi-queue: each core full path
  kOverlapNoMq,        // (e) 2 FPs share output ports, single queues
  kOverlapWithMq,      // (f) overlapping FPs with multi-queue NICs
};

struct Fig6Result {
  Fig6Scenario scenario;
  std::string label;
  int cores;             // cores participating per FP group
  double gbps_per_fp;    // forwarding rate per forwarding path (64 B)
  double paper_gbps;     // the paper's reported value
};

// Evaluates all scenarios at 64 B.
std::vector<Fig6Result> EvaluateFig6Scenarios();

// Model constants (calibrated; see scenarios.cpp for derivations).
inline constexpr double kToyCoreClockHz = 2.8e9;
inline constexpr double kToyBaseCycles = 843.0;      // full path on one core
inline constexpr double kToyPollSplitCycles = 500.0; // poll + classify only
inline constexpr double kHandoffSameL3Cycles = 775.0;
inline constexpr double kHandoffCrossCycles = 1972.0;
inline constexpr double kContendedLockCycles = 1202.0;

}  // namespace rb

#endif  // RB_MODEL_SCENARIOS_HPP_
