// §5.3 item (4): scaling projections. The per-packet loads are constant in
// the input rate, so next-generation performance is the same min-over-
// components with the capacities scaled — that is literally what the
// authors do to project 38.8 / 19.9 / 5.8 Gbps (64 B) and ~70 Gbps
// (Abilene, NIC-slot-unconstrained).
#ifndef RB_MODEL_EXTRAPOLATE_HPP_
#define RB_MODEL_EXTRAPOLATE_HPP_

#include "model/throughput.hpp"

namespace rb {

struct Projection {
  App app;
  double frame_bytes;
  ThroughputResult current;   // paper's evaluation server
  ThroughputResult next_gen;  // 4-socket projection
};

// Projects all three applications at 64 B onto the next-gen spec.
std::vector<Projection> ProjectNextGen64B();

// The Abilene projection on the *current* server with unlimited NIC slots
// (PCIe ignored, socket-I/O the binding streaming bound) — the paper's
// "70 Gbps" estimate.
ThroughputResult ProjectAbileneUnlimitedNics(App app, double mean_frame_bytes);

}  // namespace rb

#endif  // RB_MODEL_EXTRAPOLATE_HPP_
