#include "model/server_spec.hpp"

namespace rb {

ServerSpec ServerSpec::Nehalem() {
  ServerSpec s;
  s.name = "Nehalem (2s x 4c @ 2.8 GHz)";
  s.sockets = 2;
  s.cores_per_socket = 4;
  s.clock_hz = 2.8e9;
  // Table 2.
  s.memory = {410e9, 262e9};
  s.inter_socket = {200e9, 144.34e9};
  s.io = {2 * 200e9, 117e9};
  s.pcie = {64e9, 50.8e9};
  s.nic_slots = 2;
  s.per_nic_input_bps = 12.3e9;
  return s;
}

ServerSpec ServerSpec::SharedBusXeon() {
  ServerSpec s;
  s.name = "Shared-bus Xeon (8c @ 2.4 GHz)";
  s.sockets = 2;
  s.cores_per_socket = 4;
  s.clock_hz = 2.4e9;
  s.shared_bus = true;
  // A single front-side bus carries all memory AND I/O traffic. The
  // effective bandwidth under the small-transfer, snoop-heavy packet
  // workload is far below the nominal burst rate; 48 Gbps reproduces the
  // large-packet ceilings reported for this platform ([29], §7).
  s.fsb_bps = 48e9;
  // Under 8-way polling the measured effect of bus waits is an ~1.4x
  // inflation of cycles/packet (calibrated to Fig 7's 11x gap).
  s.fsb_cpu_stall_factor = 1.4;
  s.memory = {s.fsb_bps, s.fsb_bps};
  s.inter_socket = {0, 0};  // FSB architecture: no point-to-point links
  s.io = {s.fsb_bps, s.fsb_bps};
  s.pcie = {64e9, 50.8e9};
  s.nic_slots = 2;
  s.per_nic_input_bps = 12.3e9;
  return s;
}

ServerSpec ServerSpec::NextGenNehalem() {
  ServerSpec s = Nehalem();
  s.name = "Next-gen Nehalem (4s x 8c @ 2.8 GHz)";
  s.sockets = 4;
  s.cores_per_socket = 8;
  // §5.3: "a 4x, 2x and 2x increase in total CPU, memory, and I/O".
  s.memory = {2 * 410e9, 2 * 262e9};
  s.inter_socket = {2 * 200e9, 2 * 144.34e9};
  s.io = {2 * 2 * 200e9, 2 * 117e9};
  s.pcie = {2 * 64e9, 2 * 50.8e9};
  // 4-8 PCIe 2.0 slots expected on the product version (§4.1).
  s.nic_slots = 6;
  return s;
}

}  // namespace rb
