// The §5.3 throughput solver: per-component per-packet loads vs component
// capacity bounds; the achievable loss-free rate is the minimum over
// components, and the arg-min is the bottleneck.
#ifndef RB_MODEL_THROUGHPUT_HPP_
#define RB_MODEL_THROUGHPUT_HPP_

#include <string>

#include "model/app_profile.hpp"
#include "model/batching.hpp"
#include "model/server_spec.hpp"

namespace rb {

struct ThroughputConfig {
  ServerSpec spec = ServerSpec::Nehalem();
  App app = App::kMinimalForwarding;
  double frame_bytes = 64;         // mean frame size of the workload
  BatchingConfig batching;         // kp/kn (defaults = paper's tuned values)
  bool multi_queue = true;         // false -> single shared queue per port
  int cores_used = -1;             // -1 = all cores
  bool nic_input_cap = true;       // apply the per-NIC PCIe input ceiling
  bool ignore_pcie = false;        // §5.3 projection mode
  double extra_cycles_per_packet = 0;  // e.g. VLB bookkeeping in cluster use
};

struct ComponentLoads {
  double cpu_cycles = 0;
  double memory_bytes = 0;
  double io_bytes = 0;
  double pcie_bytes = 0;
  double inter_socket_bytes = 0;
};

struct ThroughputResult {
  double pps = 0;
  double bps = 0;                  // payload bits/s (frame bytes * 8 * pps)
  std::string bottleneck;
  ComponentLoads per_packet;

  // Per-component ceilings in pps (infinity when not applicable).
  double cpu_pps = 0;
  double memory_pps = 0;
  double io_pps = 0;
  double pcie_pps = 0;
  double inter_socket_pps = 0;
  double nic_input_pps = 0;
  double shared_queue_pps = 0;
  double fsb_pps = 0;
};

// Computes the per-packet loads for a configuration (no capacities).
ComponentLoads LoadsFor(const ThroughputConfig& config);

// Solves for the maximum loss-free forwarding rate.
ThroughputResult SolveThroughput(const ThroughputConfig& config);

}  // namespace rb

#endif  // RB_MODEL_THROUGHPUT_HPP_
