#include "model/scenarios.hpp"

namespace rb {
namespace {

constexpr double kBitsPerPacket = 64.0 * 8.0;

double PpsToGbps(double pps) { return pps * kBitsPerPacket / 1e9; }

}  // namespace

std::vector<Fig6Result> EvaluateFig6Scenarios() {
  std::vector<Fig6Result> out;

  // (b) Parallel: one core runs poll -> process -> transmit.
  //     rate = clock / base = 2.8e9 / 843 = 3.32 Mpps = 1.70 Gbps.
  double parallel_pps = kToyCoreClockHz / kToyBaseCycles;

  // (a) Pipeline, same L3: two cores split the path ~evenly; the handoff
  //     adds synchronization cycles to the receiving stage, which becomes
  //     the bottleneck stage.
  //     rate = clock / (base/2 + handoff) -> -29% vs parallel.
  double pipe_l3_pps = kToyCoreClockHz / (kToyBaseCycles / 2 + kHandoffSameL3Cycles);

  // (a') Pipeline across sockets: handoff plus compulsory cache misses on
  //      every packet access -> -64%.
  double pipe_x_pps = kToyCoreClockHz / (kToyBaseCycles / 2 + kHandoffCrossCycles);

  // (c) Splitter without multi-queue: one core polls the single rx queue
  //     and hands each packet to one of two processing cores. The splitter
  //     saturates first: poll/classify plus a same-L3 handoff per packet.
  double splitter_pps = kToyCoreClockHz / (kToyPollSplitCycles + kHandoffSameL3Cycles);

  // (d) Same three cores with multi-queue: rx queues per core; two cores
  //     run full parallel FPs (the third polls its own queue; with two
  //     input ports the aggregate is 2 parallel FPs).
  double mq_split_pps = 2 * parallel_pps;

  // (e) Overlapping FPs, single queues: two FPs cross at shared output
  //     ports, so transmitting cores contend on the tx queue lock.
  double overlap_pps = kToyCoreClockHz / (kToyBaseCycles + kContendedLockCycles);

  // (f) Overlapping FPs with multi-queue: each core owns a private tx
  //     queue on every port -> full parallel rate.
  double overlap_mq_pps = parallel_pps;

  out.push_back({Fig6Scenario::kPipelineSameL3, "(a) pipeline, shared L3", 2,
                 PpsToGbps(pipe_l3_pps), 1.2});
  out.push_back({Fig6Scenario::kPipelineCrossL3, "(a') pipeline, across sockets", 2,
                 PpsToGbps(pipe_x_pps), 0.6});
  out.push_back({Fig6Scenario::kParallel, "(b) parallel, one core per packet", 1,
                 PpsToGbps(parallel_pps), 1.7});
  out.push_back({Fig6Scenario::kSplitterNoMq, "(c) splitter, single queue", 3,
                 PpsToGbps(splitter_pps), 1.1});
  out.push_back({Fig6Scenario::kSplitterWithMq, "(d) multi-queue split", 3,
                 PpsToGbps(mq_split_pps), 3.4});
  out.push_back({Fig6Scenario::kOverlapNoMq, "(e) overlapping paths, single queues", 2,
                 PpsToGbps(overlap_pps), 0.7});
  out.push_back({Fig6Scenario::kOverlapWithMq, "(f) overlapping paths, multi-queue", 2,
                 PpsToGbps(overlap_mq_pps), 1.7});
  return out;
}

}  // namespace rb
