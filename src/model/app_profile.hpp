// Per-application, per-packet load profiles — the executable form of the
// paper's §5.3 measurements (Table 3 and Fig 9/10).
//
// Every component load is an affine function of the frame size:
//     load(bytes) = fixed + per_byte * bytes
// The constants are calibrated so that, on the Nehalem spec with the
// default configuration (8 cores, multi-queue, kp=32, kn=16):
//   * 64 B loads reproduce the paper's measured rates
//     (forwarding 9.7 Gbps / 18.96 Mpps, routing 6.35 Gbps, IPsec
//     1.4 Gbps — Fig 8 bottom),
//   * the 1024 B / 64 B load ratios match §5.3 item (2)
//     (memory 6x, I/O 11x, CPU 1.6x),
//   * IPsec at the Abilene mix (~730 B mean) yields ~4.45 Gbps,
//   * the next-generation projection reproduces 38.8 / 19.9 / 5.8 Gbps —
//     the routing number requires the memory system to become the
//     bottleneck at 2x memory bandwidth, which pins routing's memory
//     load at ~1684 B/packet (random lookups in a 256 K-entry table).
// Derivations are spelled out in app_profile.cpp next to each constant.
#ifndef RB_MODEL_APP_PROFILE_HPP_
#define RB_MODEL_APP_PROFILE_HPP_

#include "workload/workload.hpp"

namespace rb {

// An affine per-packet load curve.
struct LoadCurve {
  double fixed = 0;
  double per_byte = 0;

  double At(double bytes) const { return fixed + per_byte * bytes; }
};

struct AppProfile {
  App app = App::kMinimalForwarding;

  // CPU cycles per packet in the default configuration (kp=32, kn=16,
  // multi-queue). Batching/locking deltas are added by the batching and
  // queueing models on top of this curve.
  LoadCurve cpu_cycles;

  // Bytes per packet crossing each subsystem.
  LoadCurve memory_bytes;
  LoadCurve io_bytes;           // socket <-> I/O-hub links (both crossings)
  LoadCurve pcie_bytes;         // rx DMA + tx DMA + descriptors
  LoadCurve inter_socket_bytes; // remote-memory traffic (~23% of accesses)

  // Table 3 reference values at 64 B (instructions/packet and CPI), used
  // for reporting; cpu_cycles is the load-bearing curve.
  double instructions_per_packet_64 = 0;
  double cycles_per_instruction_64 = 0;

  static AppProfile For(App app);
};

}  // namespace rb

#endif  // RB_MODEL_APP_PROFILE_HPP_
