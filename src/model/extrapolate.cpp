#include "model/extrapolate.hpp"

namespace rb {

std::vector<Projection> ProjectNextGen64B() {
  std::vector<Projection> out;
  for (App app : {App::kMinimalForwarding, App::kIpRouting, App::kIpsec}) {
    Projection proj;
    proj.app = app;
    proj.frame_bytes = 64;

    ThroughputConfig current;
    current.app = app;
    current.frame_bytes = 64;
    proj.current = SolveThroughput(current);

    ThroughputConfig next = current;
    next.spec = ServerSpec::NextGenNehalem();
    proj.next_gen = SolveThroughput(next);

    out.push_back(proj);
  }
  return out;
}

ThroughputResult ProjectAbileneUnlimitedNics(App app, double mean_frame_bytes) {
  ThroughputConfig config;
  config.app = app;
  config.frame_bytes = mean_frame_bytes;
  config.nic_input_cap = false;
  config.ignore_pcie = true;
  // The paper's estimate treats the socket-I/O links as the streaming
  // bound and does not apply the conservative random-access stream
  // ceiling to the memory system (DMA-heavy sequential traffic), so the
  // projection lets memory run to its nominal rating.
  config.spec.memory.empirical_bps = config.spec.memory.nominal_bps;
  return SolveThroughput(config);
}

}  // namespace rb
