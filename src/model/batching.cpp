#include "model/batching.hpp"

#include "common/log.hpp"

namespace rb {

double BatchingCyclesDelta(const BatchingConfig& config) {
  RB_CHECK(config.kp >= 1 && config.kn >= 1);
  double default_amortized = kPollBatchCycles / 32.0 + kNicBatchCycles / 16.0;
  double amortized = kPollBatchCycles / config.kp + kNicBatchCycles / config.kn;
  return amortized - default_amortized;
}

double SharedQueueSerializedCycles(const BatchingConfig& config, int sharers) {
  if (sharers <= 1) {
    return 0.0;
  }
  return kLockCyclesFloor + kLockCyclesPerPoll / config.kp;
}

}  // namespace rb
