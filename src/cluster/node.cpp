#include "cluster/node.hpp"

// FifoServer is header-only; this translation unit anchors the module in
// the build (and is the natural home for future out-of-line helpers).

namespace rb {}  // namespace rb
