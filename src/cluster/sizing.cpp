#include "cluster/sizing.hpp"

#include <cmath>

#include "common/log.hpp"
#include "cluster/topology.hpp"

namespace rb {

ServerPlatform ServerPlatform::Current() {
  ServerPlatform p;
  p.name = "one ext. port/server, 5 PCIe slots";
  p.nic_slots = 5;
  p.ext_ports_per_server = 1;
  return p;
}

ServerPlatform ServerPlatform::MoreNics() {
  ServerPlatform p;
  p.name = "one ext. port/server, 20 PCIe slots";
  p.nic_slots = 20;
  p.ext_ports_per_server = 1;
  return p;
}

ServerPlatform ServerPlatform::FasterServers() {
  ServerPlatform p;
  p.name = "two ext. ports/server, 20 PCIe slots";
  p.nic_slots = 20;
  p.ext_ports_per_server = 2;
  return p;
}

namespace {

// NIC slots left for internal links after the external ports are housed.
int SpareSlots(const ServerPlatform& p) {
  int ext_slots = (p.ext_ports_per_server + p.tengig_ports_per_slot - 1) / p.tengig_ports_per_slot;
  return p.nic_slots - ext_slots;
}

}  // namespace

SizingResult SizeCluster(const ServerPlatform& platform, uint32_t external_ports,
                         double port_rate_bps) {
  SizingResult r;
  r.external_ports = external_ports;
  uint32_t s = static_cast<uint32_t>(platform.ext_ports_per_server);
  RB_CHECK(s >= 1);
  uint64_t servers = (external_ports + s - 1) / s;
  r.port_servers = servers;
  int spare = SpareSlots(platform);
  if (spare <= 0 || servers < 2) {
    r.feasible = servers >= 1 && external_ports <= s;  // single-server "cluster"
    r.mesh = true;
    return r;
  }

  // Mesh feasibility with either internal port type. Per-link VLB load in
  // a full mesh of M nodes handling s ports each: 2 s R / (M - 1).
  uint64_t links_needed = servers - 1;
  double per_link_load = 2.0 * s * port_rate_bps / static_cast<double>(links_needed);
  struct LinkOption {
    const char* label;
    double rate;
    uint64_t fanout;
  };
  const LinkOption options[] = {
      {"10G", 10e9, static_cast<uint64_t>(spare) * platform.tengig_ports_per_slot},
      {"1G", 1e9, static_cast<uint64_t>(spare) * platform.onegig_ports_per_slot},
  };
  for (const auto& opt : options) {
    // Bundle parallel physical links per neighbor when one link cannot
    // carry the VLB share (e.g. 1 GbE links in a small mesh).
    uint64_t bundle = static_cast<uint64_t>(std::ceil(per_link_load / opt.rate));
    bundle = std::max<uint64_t>(bundle, 1);
    if (links_needed * bundle <= opt.fanout) {
      r.feasible = true;
      r.mesh = true;
      r.internal_link = opt.label;
      return r;
    }
  }

  // k-ary n-fly of 10 GbE-linked servers: a switch server needs k links in
  // and k out -> k = spare slots (dual-port NICs give one in + one out per
  // slot).
  uint64_t k = static_cast<uint64_t>(spare);
  if (k < 2) {
    r.feasible = false;
    return r;
  }
  uint64_t n = 1;
  uint64_t reach = k;
  while (reach < servers) {
    reach *= k;
    n++;
  }
  r.feasible = true;
  r.mesh = false;
  r.internal_link = "10G";
  r.switch_servers = n * ((servers + k - 1) / k);
  return r;
}

namespace {

// Switch count for a strictly non-blocking fabric with `ports` endpoints
// built from k-port switches: one switch when it fits, otherwise a folded
// Clos whose 2*(k/2)-1 middle planes are built recursively.
uint64_t NonBlockingSwitchCount(uint64_t ports, int k) {
  if (ports <= static_cast<uint64_t>(k)) {
    return 1;
  }
  // Strictly non-blocking Clos (m >= 2n - 1): an edge switch with n
  // host-facing ports needs 2n - 1 uplinks, so n + (2n - 1) <= k gives
  // n = (k + 1) / 3 — this is the over-provisioning §3.3 points at.
  uint64_t down = (static_cast<uint64_t>(k) + 1) / 3;
  uint64_t edge = (ports + down - 1) / down;
  uint64_t planes = 2 * down - 1;
  return edge + planes * NonBlockingSwitchCount(edge, k);
}

}  // namespace

double SwitchedClusterServerEquivalents(uint32_t external_ports, int switch_ports,
                                        double port_cost, double server_cost) {
  RB_CHECK(switch_ports >= 4);
  uint64_t switches = NonBlockingSwitchCount(external_ports, switch_ports);
  double switch_cost = static_cast<double>(switches) * switch_ports * port_cost;
  // N packet-processing servers plus the switch fabric cost in
  // server-equivalents (the paper's conversion: 4 Arista ports = 1 server).
  return static_cast<double>(external_ports) + switch_cost / server_cost;
}

std::vector<Fig3Row> ComputeFig3() {
  std::vector<Fig3Row> rows;
  for (uint32_t n = 4; n <= 2048; n *= 2) {
    Fig3Row row;
    row.n = n;
    row.current = SizeCluster(ServerPlatform::Current(), n);
    row.more_nics = SizeCluster(ServerPlatform::MoreNics(), n);
    row.faster = SizeCluster(ServerPlatform::FasterServers(), n);
    row.switched_equiv = SwitchedClusterServerEquivalents(n);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace rb
