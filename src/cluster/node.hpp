// FIFO servers for the event-driven cluster simulator.
//
// Every contended resource on a packet's path through the cluster is a
// work-conserving FIFO server with a bounded queue: NIC directions (the
// per-NIC PCIe ceiling of §4.1), internal links, the node's CPU complex
// (capacity = cores x clock, abstracting within-server parallelism at
// cluster scope), and the external output port (line rate R). A server
// drops arrivals when its queue is full — the finite-buffer behaviour
// that defines the maximum loss-free rate.
#ifndef RB_CLUSTER_NODE_HPP_
#define RB_CLUSTER_NODE_HPP_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/vlb.hpp"
#include "common/time.hpp"

namespace rb {

enum class ServerKind : uint8_t {
  kExtRxNic = 0,
  kCpu,
  kTxNic,
  kLink,
  kRxNic,
  kExtOut,
};

// A unit of work queued at a server: which in-flight packet, its
// service time (precomputed from the packet size / role), and when it
// joined the queue — service start minus arrival is the queueing wait the
// latency plane attributes to this server.
struct ServerJob {
  uint32_t packet_slot = 0;
  double service_seconds = 0;
  SimTime arrival = 0;
};

struct FifoServer {
  ServerKind kind = ServerKind::kCpu;
  // Service capacity: rate servers set rate_bps (0 = transparent wire);
  // the CPU server sets cycles_per_sec and jobs carry cycle costs.
  double rate_bps = 0;
  double cycles_per_sec = 0;
  size_t queue_cap = 4096;

  std::deque<ServerJob> queue;
  bool busy = false;
  // Failure injection: a disabled server accepts nothing (arrivals are
  // blackholed by the simulator) and blackholes the job in service when
  // its completion fires. Set while the owning node (or this directed
  // link) is down.
  bool disabled = false;
  uint64_t served = 0;
  uint64_t drops = 0;
  uint64_t bytes = 0;
  double busy_time = 0;

  // Accepts a job unless the queue is full. The caller starts service if
  // the server was idle.
  bool Enqueue(const ServerJob& job) {
    if (queue.size() >= queue_cap) {
      drops++;
      return false;
    }
    queue.push_back(job);
    return true;
  }

  bool idle() const { return !busy && queue.empty(); }
};

// Per-node bookkeeping the simulator exposes to tests and benches.
struct NodeStats {
  uint64_t cpu_served = 0;
  double cpu_busy_seconds = 0;
  uint64_t delivered = 0;
  uint64_t delivered_bytes = 0;
  bool alive = true;  // ground-truth liveness (failure injection)
};

}  // namespace rb

#endif  // RB_CLUSTER_NODE_HPP_
