// Direct Valiant Load Balancing path selection (§3.2, §6.1).
//
// Plain VLB sends every packet via a uniformly random intermediate node
// (phase 1), which then forwards it to the output node (phase 2). Direct
// VLB ("adaptive load-balancing with local information", Zhang-Shen &
// McKeown) lets the input node send up to R/N of the traffic addressed to
// each output directly, load-balancing only the excess — with a uniform
// traffic matrix everything goes direct and the per-node processing
// requirement drops from 3R to 2R.
//
// The flowlet layer (when enabled) keeps same-flow bursts on one path
// unless the path's estimated load exceeds its share, in which case the
// flowlet spills to per-packet balancing, as in the prototype.
#ifndef RB_CLUSTER_VLB_HPP_
#define RB_CLUSTER_VLB_HPP_

#include <memory>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/flowlet.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace rb {

struct VlbConfig {
  uint16_t num_nodes = 4;
  double port_rate_bps = 10e9;       // R
  double internal_link_bps = 10e9;
  bool direct_vlb = true;            // false = classic two-phase VLB always
  bool flowlets = true;
  SimTime flowlet_delta = 0.1;       // δ = 100 ms
  // A flowlet may stay on a path while the path's estimated rate is below
  // this fraction of the link's VLB share; beyond it, spill to per-packet.
  double overload_threshold = 0.95;
  // EWMA time constant for per-path rate estimation. Short enough that
  // the Direct-VLB budget reacts within a fraction of a millisecond.
  SimTime rate_tau = 1e-3;
  uint64_t seed = 99;
};

struct VlbDecision {
  bool direct = false;
  uint16_t via = 0;      // intermediate node when !direct
  bool spilled = false;  // flowlet overflowed to per-packet balancing
};

// Path selector for one input node. Optionally failure-aware: bind a
// HealthView and the router excludes nodes/links believed dead, falls back
// to via-routing when the direct link to the destination is down, and
// re-pins flowlets whose path died (instead of blackholing for δ).
class DirectVlbRouter {
 public:
  // Sentinel returned by PickIntermediate when no load-balancing
  // intermediate exists (≤2-node cluster, or every candidate is believed
  // dead/unreachable): the packet must take the direct link.
  static constexpr uint16_t kNoVia = 0xffff;

  DirectVlbRouter(const VlbConfig& config, uint16_t self);

  // Chooses the path for a packet of `bytes` bytes of flow `flow_id`
  // destined to output node `dst`, at simulated time `now`.
  VlbDecision Route(uint16_t dst, uint64_t flow_id, uint32_t bytes, SimTime now);

  // Estimated rate currently sent via `via` (bps); kDirectIndex for the
  // direct path. Exposed for tests.
  double EstimatedRate(uint16_t dst, uint16_t via, SimTime now) const;

  // Binds the believed-liveness view consulted on every decision. The view
  // must outlive the router; nullptr (the default) disables failure
  // awareness.
  void set_health(const HealthView* health) { health_ = health; }

  // Failure-detection hooks: erase flowlets pinned to paths that traverse
  // the failed element, so affected flows re-pin on their next packet.
  // Return the number of flowlets invalidated.
  size_t OnNodeUnhealthy(uint16_t node);
  size_t OnLinkUnhealthy(uint16_t from, uint16_t to);

  uint64_t direct_packets() const { return direct_packets_; }
  uint64_t balanced_packets() const { return balanced_packets_; }
  uint64_t spilled_flowlets() const { return spilled_; }
  // Packets sent via an intermediate because the direct link (or the
  // destination-facing path) was believed down.
  uint64_t failover_reroutes() const { return failover_reroutes_; }
  // Flowlets re-pinned at routing time because their pinned path died.
  uint64_t flowlet_repins() const { return repins_; }
  // Flowlets erased eagerly by the OnNodeUnhealthy/OnLinkUnhealthy hooks.
  uint64_t flowlets_invalidated() const { return invalidated_; }

 private:
  // Token bucket + EWMA rate tracker per path.
  struct PathRate {
    double rate = 0;       // EWMA bps
    SimTime last = 0;
  };

  void Charge(PathRate* pr, uint32_t bytes, SimTime now) const;
  double Read(const PathRate& pr, SimTime now) const;
  uint16_t PickIntermediate(uint16_t dst, Rng* rng);
  bool NodeUp(uint16_t node) const;
  bool LinkOk(uint16_t from, uint16_t to) const;
  bool PathHealthy(const FlowletPath& path, uint16_t dst) const;
  VlbDecision TakeDirect(uint16_t dst, uint64_t flow_id, uint32_t bytes, SimTime now);

  VlbConfig config_;
  uint16_t self_;
  FlowletTable flowlets_;
  Rng rng_;
  const HealthView* health_ = nullptr;
  // direct_rate_[dst]: rate sent directly to dst (budget R/N each).
  std::vector<PathRate> direct_rate_;
  // via_rate_[via]: phase-1 rate sent through each neighbor link.
  std::vector<PathRate> via_rate_;
  std::vector<uint16_t> pick_scratch_;  // candidate buffer, no per-call alloc
  uint64_t direct_packets_ = 0;
  uint64_t balanced_packets_ = 0;
  uint64_t spilled_ = 0;
  uint64_t failover_reroutes_ = 0;
  uint64_t repins_ = 0;
  uint64_t invalidated_ = 0;
};

}  // namespace rb

#endif  // RB_CLUSTER_VLB_HPP_
