// Direct Valiant Load Balancing path selection (§3.2, §6.1).
//
// Plain VLB sends every packet via a uniformly random intermediate node
// (phase 1), which then forwards it to the output node (phase 2). Direct
// VLB ("adaptive load-balancing with local information", Zhang-Shen &
// McKeown) lets the input node send up to R/N of the traffic addressed to
// each output directly, load-balancing only the excess — with a uniform
// traffic matrix everything goes direct and the per-node processing
// requirement drops from 3R to 2R.
//
// The flowlet layer (when enabled) keeps same-flow bursts on one path
// unless the path's estimated load exceeds its share, in which case the
// flowlet spills to per-packet balancing, as in the prototype.
#ifndef RB_CLUSTER_VLB_HPP_
#define RB_CLUSTER_VLB_HPP_

#include <memory>
#include <vector>

#include "cluster/flowlet.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace rb {

struct VlbConfig {
  uint16_t num_nodes = 4;
  double port_rate_bps = 10e9;       // R
  double internal_link_bps = 10e9;
  bool direct_vlb = true;            // false = classic two-phase VLB always
  bool flowlets = true;
  SimTime flowlet_delta = 0.1;       // δ = 100 ms
  // A flowlet may stay on a path while the path's estimated rate is below
  // this fraction of the link's VLB share; beyond it, spill to per-packet.
  double overload_threshold = 0.95;
  // EWMA time constant for per-path rate estimation. Short enough that
  // the Direct-VLB budget reacts within a fraction of a millisecond.
  SimTime rate_tau = 1e-3;
  uint64_t seed = 99;
};

struct VlbDecision {
  bool direct = false;
  uint16_t via = 0;      // intermediate node when !direct
  bool spilled = false;  // flowlet overflowed to per-packet balancing
};

// Path selector for one input node.
class DirectVlbRouter {
 public:
  DirectVlbRouter(const VlbConfig& config, uint16_t self);

  // Chooses the path for a packet of `bytes` bytes of flow `flow_id`
  // destined to output node `dst`, at simulated time `now`.
  VlbDecision Route(uint16_t dst, uint64_t flow_id, uint32_t bytes, SimTime now);

  // Estimated rate currently sent via `via` (bps); kDirectIndex for the
  // direct path. Exposed for tests.
  double EstimatedRate(uint16_t dst, uint16_t via, SimTime now) const;

  uint64_t direct_packets() const { return direct_packets_; }
  uint64_t balanced_packets() const { return balanced_packets_; }
  uint64_t spilled_flowlets() const { return spilled_; }

 private:
  // Token bucket + EWMA rate tracker per path.
  struct PathRate {
    double rate = 0;       // EWMA bps
    SimTime last = 0;
  };

  void Charge(PathRate* pr, uint32_t bytes, SimTime now) const;
  double Read(const PathRate& pr, SimTime now) const;
  uint16_t PickIntermediate(uint16_t dst, Rng* rng);

  VlbConfig config_;
  uint16_t self_;
  FlowletTable flowlets_;
  Rng rng_;
  // direct_rate_[dst]: rate sent directly to dst (budget R/N each).
  std::vector<PathRate> direct_rate_;
  // via_rate_[via]: phase-1 rate sent through each neighbor link.
  std::vector<PathRate> via_rate_;
  uint64_t direct_packets_ = 0;
  uint64_t balanced_packets_ = 0;
  uint64_t spilled_ = 0;
};

}  // namespace rb

#endif  // RB_CLUSTER_VLB_HPP_
