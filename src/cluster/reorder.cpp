#include "cluster/reorder.hpp"

namespace rb {

void ReorderDetector::Deliver(uint64_t flow_id, uint64_t flow_seq) {
  total_++;
  FlowState& st = flows_[flow_id];
  if (!st.any) {
    st.any = true;
    st.max_seq = flow_seq;
    return;
  }
  if (flow_seq > st.max_seq) {
    st.max_seq = flow_seq;
    st.in_reordered_run = false;
    return;
  }
  if (flow_seq == st.max_seq) {
    // A duplicate delivery of the newest packet is not a reordering: no
    // earlier packet overtook it. Counting it as reordered (and opening a
    // reordered run) inflated the Fig-style percentages.
    duplicate_packets_++;
    return;
  }
  // Late packet: part of a reordered sequence. A contiguous run of late
  // packets counts once.
  reordered_packets_++;
  if (!st.in_reordered_run) {
    reordered_sequences_++;
    st.in_reordered_run = true;
  }
}

}  // namespace rb
