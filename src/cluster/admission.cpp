#include "cluster/admission.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rb {

AdmissionDrr::AdmissionDrr(const AdmissionConfig& config, uint16_t num_ports)
    : cfg_(config),
      deficit_(num_ports, 0.0),
      admitted_bytes_(num_ports, 0),
      dropped_bytes_(num_ports, 0) {
  RB_CHECK(num_ports >= 1);
  RB_CHECK(cfg_.capacity_bps > 0);
  RB_CHECK(cfg_.quantum_bytes >= 1 && cfg_.burst_quanta >= 1.0);
  RB_CHECK(cfg_.rate_tau_s > 0);
  RB_CHECK(cfg_.release_depth <= cfg_.engage_depth);
  RB_CHECK(cfg_.release_margin <= cfg_.engage_margin);
}

bool AdmissionDrr::PortAlive(uint16_t port) const {
  return health_ == nullptr || health_->NodeAlive(port);
}

void AdmissionDrr::UpdateRate(uint32_t bytes, SimTime now) {
  if (window_start_ == 0) {
    window_start_ = now;
  }
  window_bytes_ += bytes;
  const SimTime elapsed = now - window_start_;
  if (elapsed >= cfg_.rate_tau_s) {
    rate_bps_ = static_cast<double>(window_bytes_) * 8.0 / elapsed;
    window_start_ = now;
    window_bytes_ = 0;
  }
}

void AdmissionDrr::Engage(SimTime now) {
  engaged_ = true;
  engage_events_++;
  // Fresh episode: every live port starts with one burst of credit
  // and refill accrues from now, not from the idle stretch before.
  const double cap = static_cast<double>(cfg_.quantum_bytes) * cfg_.burst_quanta;
  std::fill(deficit_.begin(), deficit_.end(), cap);
  last_refill_ = now;
}

void AdmissionDrr::UpdateEngagement(size_t depth, SimTime now) {
  if (force_ == AdmissionForce::kOn) {
    if (!engaged_) {
      Engage(now);
    }
    return;
  }
  if (force_ == AdmissionForce::kOff) {
    engaged_ = false;
    return;
  }
  const bool rate_over = rate_bps_ > cfg_.capacity_bps * cfg_.engage_margin;
  if (!engaged_) {
    if (rate_over || depth >= cfg_.engage_depth) {
      Engage(now);
    }
    return;
  }
  const bool rate_under = rate_bps_ < cfg_.capacity_bps * cfg_.release_margin;
  if (rate_under && depth <= cfg_.release_depth) {
    engaged_ = false;
  }
}

void AdmissionDrr::Refill(SimTime now) {
  const SimTime elapsed = now - last_refill_;
  if (elapsed <= 0) {
    return;
  }
  last_refill_ = now;
  uint16_t live = 0;
  for (uint16_t j = 0; j < num_ports(); ++j) {
    live += PortAlive(j) ? 1 : 0;
  }
  if (live == 0) {
    return;
  }
  // The believed-deliverable byte budget for this elapsed slice, split
  // evenly over live ports (the DRR quantum, time-based): dead ports earn
  // nothing, so capacity freed by a failure flows to the survivors.
  const double per_port = cfg_.capacity_bps / 8.0 * elapsed / live;
  const double cap = static_cast<double>(cfg_.quantum_bytes) * cfg_.burst_quanta;
  for (uint16_t j = 0; j < num_ports(); ++j) {
    if (!PortAlive(j)) {
      continue;
    }
    deficit_[j] = std::min(deficit_[j] + per_port, cap);
  }
}

bool AdmissionDrr::Admit(uint16_t dst, uint32_t bytes, SimTime now, size_t monitored_depth) {
  RB_CHECK(dst < num_ports());
  offered_packets_++;
  UpdateRate(bytes, now);
  UpdateEngagement(monitored_depth, now);
  if (!PortAlive(dst)) {
    dropped_dead_++;
    dropped_bytes_[dst] += bytes;
    return false;
  }
  if (!engaged_) {
    admitted_packets_++;
    admitted_bytes_[dst] += bytes;
    return true;
  }
  Refill(now);
  if (deficit_[dst] >= static_cast<double>(bytes)) {
    deficit_[dst] -= static_cast<double>(bytes);
    admitted_packets_++;
    admitted_bytes_[dst] += bytes;
    return true;
  }
  dropped_packets_++;
  dropped_bytes_[dst] += bytes;
  return false;
}

}  // namespace rb
