// Failure injection and failure detection for the cluster (§3 robustness).
//
// The VLB mesh's selling point is graceful degradation: when a server or an
// internal link dies, uniform spreading lets the survivors keep serving at
// the degraded-mesh bound instead of collapsing. This header provides the
// two pieces the DES needs to exercise that claim:
//
//  * FailureSchedule — a time-ordered script of node-down/up and directed
//    link-down/up events, built explicitly, parsed from a compact text
//    spec, or generated randomly from seeded MTBF/MTTR draws.
//  * HealthView — the *believed* liveness of nodes and directed links, as
//    seen by the routing layer. Ground truth changes at the scheduled
//    event time; beliefs change only after the detection delay (the
//    heartbeat timeout), which is exactly the window during which routers
//    keep blackholing traffic into a dead peer.
#ifndef RB_CLUSTER_FAILURE_HPP_
#define RB_CLUSTER_FAILURE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rb {

enum class FailureKind : uint8_t { kNodeDown, kNodeUp, kLinkDown, kLinkUp };

const char* FailureKindName(FailureKind kind);

struct FailureEvent {
  SimTime time = 0;
  FailureKind kind = FailureKind::kNodeDown;
  uint16_t node = 0;  // node events: the node; link events: the source
  uint16_t peer = 0;  // link events: the destination of the directed edge
};

// A scripted sequence of failure/recovery events. Events may be added in
// any order; events() returns them sorted by time (stable for ties, so a
// down and an up scripted at the same instant apply in insertion order).
class FailureSchedule {
 public:
  FailureSchedule& NodeDown(uint16_t node, SimTime t);
  FailureSchedule& NodeUp(uint16_t node, SimTime t);
  FailureSchedule& LinkDown(uint16_t from, uint16_t to, SimTime t);
  FailureSchedule& LinkUp(uint16_t from, uint16_t to, SimTime t);
  FailureSchedule& Add(const FailureEvent& ev);

  // Parses a comma/semicolon-separated spec, each entry
  //   <time>:<kind>:<node>            kind in {node-down, node-up}
  //   <time>:<kind>:<from>-<to>       kind in {link-down, link-up}
  // e.g. "0.01:node-down:2,0.02:node-up:2,0.015:link-down:0-3".
  // Returns false (leaving *out* untouched) on malformed input.
  static bool Parse(const std::string& spec, FailureSchedule* out);

  // Seeded random mode: each node independently alternates up -> down ->
  // up with exponential time-to-failure (mean `mtbf`) and exponential
  // repair time (mean `mttr`), over [0, horizon). Deterministic in `seed`.
  static FailureSchedule RandomNodeFailures(uint16_t num_nodes, SimTime mtbf, SimTime mttr,
                                            SimTime horizon, uint64_t seed);

  // Sorted by time (stable).
  const std::vector<FailureEvent>& events() const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

 private:
  mutable std::vector<FailureEvent> events_;
  mutable bool sorted_ = true;
};

// Believed liveness of nodes and directed links, updated by the failure
// detector (in the DES: a scheduled event `detection_delay` after the
// ground-truth transition). Everything starts alive/up. A dead node also
// reports every adjacent link as down, so callers only need the two
// queries below. version() bumps on every transition; cached routing
// decisions can compare it to notice that beliefs changed.
class HealthView {
 public:
  explicit HealthView(uint16_t num_nodes);

  void SetNodeAlive(uint16_t node, bool alive);
  void SetLinkUp(uint16_t from, uint16_t to, bool up);

  bool NodeAlive(uint16_t node) const;
  bool LinkUp(uint16_t from, uint16_t to) const;

  uint16_t num_nodes() const { return n_; }
  uint64_t version() const { return version_; }
  // Nodes currently believed alive.
  uint16_t alive_nodes() const;

 private:
  uint16_t n_;
  std::vector<uint8_t> node_alive_;
  std::vector<uint8_t> link_up_;  // [from * n_ + to]
  uint64_t version_ = 0;
};

}  // namespace rb

#endif  // RB_CLUSTER_FAILURE_HPP_
