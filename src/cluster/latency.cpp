#include "cluster/latency.hpp"

namespace rb {

LatencyEstimate EstimateLatency(const LatencyParams& params) {
  LatencyEstimate e;
  e.dma_us = params.dma_crossing_us * params.dma_crossings;
  e.processing_us = params.routing_cycles / params.clock_hz * 1e6;
  // A packet can wait for up to kn - 1 others before its descriptor batch
  // is initiated; the paper rounds this to kn * processing time.
  e.batching_us = params.kn * e.processing_us;
  e.per_server_us = e.dma_us + e.batching_us + e.processing_us;
  e.cluster_2hop_us = 2 * e.per_server_us;
  e.cluster_3hop_us = 3 * e.per_server_us;
  return e;
}

}  // namespace rb
