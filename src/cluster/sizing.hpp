// Cluster sizing (Fig 3): how many servers are needed for an N-port,
// R bps/port router, as a function of the server configuration.
//
// Rules (§3.3):
//  * Assign each server as many external router ports as it can handle
//    (s ports at 3sR processing).
//  * Full mesh if the per-server fanout covers N/s - 1 internal links AND
//    every internal link's VLB load, 2sR / (N/s - 1), fits the link rate.
//    Internal links can be built from either port type the NICs offer
//    (2 x 10 GbE or 8 x 1 GbE per slot); we pick whichever admits a mesh.
//  * Otherwise, a k-ary n-fly of 10 GbE-linked servers, k = spare NIC
//    slots (each switch node needs k links in + k out on dual-port NICs),
//    n = ceil(log_k(N/s)): total = N/s port servers + n * ceil(N/(s*k))
//    switch servers.
//
// The "switched cluster" comparison prices a strictly non-blocking Clos of
// 48-port 10 GbE switches at the paper's conversion (4 switch ports == 1
// server) and adds the N packet-processing servers.
#ifndef RB_CLUSTER_SIZING_HPP_
#define RB_CLUSTER_SIZING_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace rb {

struct ServerPlatform {
  std::string name;
  int nic_slots = 5;
  int ext_ports_per_server = 1;  // s
  // Port options per NIC slot (the paper's NICs: 2x10G or 8x1G).
  int tengig_ports_per_slot = 2;
  int onegig_ports_per_slot = 8;

  static ServerPlatform Current();        // 1 ext port, 5 slots
  static ServerPlatform MoreNics();       // 1 ext port, 20 slots
  static ServerPlatform FasterServers();  // 2 ext ports, 20 slots
};

struct SizingResult {
  uint32_t external_ports = 0;
  bool feasible = false;
  bool mesh = false;             // full mesh vs k-ary n-fly
  std::string internal_link;     // "10G" or "1G" for the mesh case
  uint64_t port_servers = 0;
  uint64_t switch_servers = 0;   // n-fly intermediates
  uint64_t total_servers() const { return port_servers + switch_servers; }
};

// Sizes a cluster of `platform` servers for N external ports at R bps.
SizingResult SizeCluster(const ServerPlatform& platform, uint32_t external_ports,
                         double port_rate_bps = 10e9);

// Cost of the rejected switched-cluster design, in server-equivalents:
// N processing servers + (switch ports) * port_cost / server_cost.
// 48-port strictly non-blocking switches; Clos when N > 48.
double SwitchedClusterServerEquivalents(uint32_t external_ports, int switch_ports = 48,
                                        double port_cost = 500, double server_cost = 2000);

// The Fig 3 sweep: N in powers of two over [4, 2048] for all three
// platforms plus the switched-cluster cost.
struct Fig3Row {
  uint32_t n = 0;
  SizingResult current;
  SizingResult more_nics;
  SizingResult faster;
  double switched_equiv = 0;
};
std::vector<Fig3Row> ComputeFig3();

}  // namespace rb

#endif  // RB_CLUSTER_SIZING_HPP_
