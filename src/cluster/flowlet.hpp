// Flowlet tracking for the reordering-avoidance scheme (§6.1).
//
// A set of same-flow packets arriving within δ of one another is a
// "flowlet" (Flare, Kandula et al.); the input node sends a whole flowlet
// through one path whenever that does not overload the corresponding
// internal link. δ = 100 ms in the prototype — well above the per-packet
// latency through the cluster, so packets of one flowlet cannot overtake
// each other by taking the same path.
#ifndef RB_CLUSTER_FLOWLET_HPP_
#define RB_CLUSTER_FLOWLET_HPP_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/time.hpp"

namespace rb {

// Path assignment for a flowlet: direct to the output node, or via a
// specific intermediate.
struct FlowletPath {
  static constexpr uint16_t kUnassigned = 0xffff;
  static constexpr uint16_t kDirect = 0xfffe;
  uint16_t via = kUnassigned;

  bool assigned() const { return via != kUnassigned; }
  bool direct() const { return via == kDirect; }
};

class FlowletTable {
 public:
  // Wildcard for Invalidate(): matches any via / any destination.
  static constexpr uint16_t kAny = 0xfffd;

  explicit FlowletTable(SimTime delta) : delta_(delta) {}

  // Returns the current path for `flow_id` if the flowlet is still live
  // (last packet within δ); otherwise an unassigned path. Always refreshes
  // the last-seen time afterwards via Commit().
  FlowletPath Lookup(uint64_t flow_id, SimTime now);

  // Records the path chosen for this packet. `dst` (the flowlet's output
  // node) keys path invalidation on failures; kAny if unknown.
  void Commit(uint64_t flow_id, SimTime now, FlowletPath path, uint16_t dst = kAny);

  // Path invalidation on failure detection: erases every entry whose
  // pinned path matches (via, dst), so the flow re-pins on its next packet
  // instead of blackholing for the rest of δ. `via` is a node id,
  // FlowletPath::kDirect, or kAny; `dst` is a node id or kAny. Returns the
  // number of flowlets invalidated.
  size_t Invalidate(uint16_t via, uint16_t dst);

  // Drops entries idle for more than δ (bounds memory in long runs).
  void Expire(SimTime now);

  size_t size() const { return entries_.size(); }
  SimTime delta() const { return delta_; }

 private:
  struct Entry {
    SimTime last_seen = 0;
    FlowletPath path;
    uint16_t dst = kAny;
  };

  SimTime delta_;
  std::unordered_map<uint64_t, Entry> entries_;
  SimTime last_expire_ = 0;
};

}  // namespace rb

#endif  // RB_CLUSTER_FLOWLET_HPP_
