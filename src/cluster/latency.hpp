// The §6.2 latency decomposition, as an analytic estimator.
//
// Per-server latency for a 64 B packet:
//   * 2 back-and-forth DMA transfers (packet + descriptor) = 4 crossings
//     at 2.56 us each (400 MHz DMA engine, published reports [50]),
//   * NIC-driven batching wait: up to kn - 1 = 15 packet slots, bounded
//     by kn * 0.8 us = 12.8 us at the measured processing rate,
//   * CPU processing: ~2425 cycles (Table 3 routing) = 0.8 us.
//   => ~24 us per server; a 2-hop (direct) path gives ~47.6 us, a 3-hop
//   (load-balanced) path ~66.4 us through RB4.
#ifndef RB_CLUSTER_LATENCY_HPP_
#define RB_CLUSTER_LATENCY_HPP_

#include "common/time.hpp"

namespace rb {

struct LatencyParams {
  double dma_crossing_us = 2.56;  // one DMA transfer of a 64 B packet
  int dma_crossings = 4;          // packet in/out + descriptor in/out
  int kn = 16;                    // NIC-driven batch size
  // Cycles to route one 64 B packet. The paper's Table 3 gives 2425; its
  // latency arithmetic rounds that to 0.8 us (2240 cycles) and we follow
  // the arithmetic so the headline 24 us / 47.6 us figures reproduce.
  double routing_cycles = 2240;
  double clock_hz = 2.8e9;        // per-core clock (processing is serial)
};

struct LatencyEstimate {
  double per_server_us = 0;
  double batching_us = 0;
  double dma_us = 0;
  double processing_us = 0;
  double cluster_2hop_us = 0;  // direct path (input + output node)
  double cluster_3hop_us = 0;  // load-balanced path (+ intermediate)
};

LatencyEstimate EstimateLatency(const LatencyParams& params = LatencyParams{});

}  // namespace rb

#endif  // RB_CLUSTER_LATENCY_HPP_
