#include "cluster/des.hpp"

#include <limits>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"

namespace rb {

namespace {

#if defined(RB_PROFILE) && RB_PROFILE
// Cycle scopes for the DES service path: real host cycles spent per event
// class (simulated time is untouched). Attribution answers "where does the
// simulator spend its cycles" — arrival handling vs per-server-kind
// service completions — which is what bounds the DES's packets/sec.
struct DesProfScopes {
  telemetry::ScopeId arrival;
  telemetry::ScopeId completion[6];  // indexed by ServerKind
  telemetry::ScopeId failure;

  DesProfScopes() {
    arrival = telemetry::InternScopeName("des/arrival");
    const char* kinds[6] = {"ext-rx-nic", "cpu", "tx-nic", "link", "rx-nic", "ext-out"};
    for (int k = 0; k < 6; ++k) {
      completion[k] = telemetry::InternScopeName(std::string("des/service/") + kinds[k]);
    }
    failure = telemetry::InternScopeName("des/failure");
  }
};

const DesProfScopes& DesScopes() {
  static const DesProfScopes scopes;
  return scopes;
}
#endif

const char* ServerKindName(ServerKind kind) {
  switch (kind) {
    case ServerKind::kExtRxNic:
      return "ext-rx-nic";
    case ServerKind::kCpu:
      return "cpu";
    case ServerKind::kTxNic:
      return "tx-nic";
    case ServerKind::kLink:
      return "link";
    case ServerKind::kRxNic:
      return "rx-nic";
    case ServerKind::kExtOut:
      return "ext-out";
  }
  return "?";
}

}  // namespace

ClusterConfig ClusterConfig::Rb4() {
  ClusterConfig c;
  c.num_nodes = 4;
  c.ext_rate_bps = 10e9;
  c.internal_link_bps = 10e9;
  c.node_cycles_per_sec = 8 * 2.8e9;
  c.ingress_cycles = AppProfile::For(App::kIpRouting).cpu_cycles;
  c.transit_cycles = AppProfile::For(App::kMinimalForwarding).cpu_cycles;
  c.vlb.num_nodes = 4;
  c.vlb.port_rate_bps = c.ext_rate_bps;
  c.vlb.internal_link_bps = c.internal_link_bps;
  c.vlb.direct_vlb = true;
  c.vlb.flowlets = true;
  return c;
}

int ClusterSim::NicIndexForPort(int port_index) const {
  return port_index / config_.ports_per_nic;
}

int ClusterSim::NicForPeer(uint16_t node, uint16_t peer) const {
  int port = 1 + (peer < node ? peer : peer - 1);
  return NicIndexForPort(port);
}

int ClusterSim::num_nics_per_node() const {
  int ports = config_.num_nodes;  // 1 external + (n - 1) internal
  return (ports + config_.ports_per_nic - 1) / config_.ports_per_nic;
}

uint32_t ClusterSim::CpuId(uint16_t node) const {
  return node * (2 + 2 * static_cast<uint32_t>(num_nics_per_node()));
}

uint32_t ClusterSim::ExtOutId(uint16_t node) const { return CpuId(node) + 1; }

uint32_t ClusterSim::NicRxId(uint16_t node, int nic) const {
  return CpuId(node) + 2 + static_cast<uint32_t>(nic);
}

uint32_t ClusterSim::NicTxId(uint16_t node, int nic) const {
  return CpuId(node) + 2 + static_cast<uint32_t>(num_nics_per_node() + nic);
}

uint32_t ClusterSim::LinkId(uint16_t from, uint16_t to) const {
  uint32_t base = config_.num_nodes * (2 + 2 * static_cast<uint32_t>(num_nics_per_node()));
  return base + from * config_.num_nodes + to;
}

ClusterSim::ClusterSim(const ClusterConfig& config)
    : config_(config), health_(config.num_nodes) {
  RB_CHECK(config.num_nodes >= 2);
  uint16_t n = config.num_nodes;
  int nics = num_nics_per_node();
  node_alive_.assign(n, 1);

  servers_.resize(n * (2 + 2 * static_cast<size_t>(nics)) + static_cast<size_t>(n) * n);
  for (uint16_t i = 0; i < n; ++i) {
    FifoServer& cpu = servers_[CpuId(i)];
    cpu.kind = ServerKind::kCpu;
    cpu.cycles_per_sec = config.node_cycles_per_sec;
    cpu.queue_cap = config.cpu_queue_pkts;

    FifoServer& out = servers_[ExtOutId(i)];
    out.kind = ServerKind::kExtOut;
    out.rate_bps = config.ext_rate_bps;
    out.queue_cap = config.ext_out_queue_pkts;

    for (int k = 0; k < nics; ++k) {
      FifoServer& rx = servers_[NicRxId(i, k)];
      rx.kind = ServerKind::kRxNic;
      rx.rate_bps = config.model_nics ? config.per_nic_bps : 0;
      rx.queue_cap = config.nic_queue_pkts;
      FifoServer& tx = servers_[NicTxId(i, k)];
      tx.kind = ServerKind::kTxNic;
      tx.rate_bps = config.model_nics ? config.per_nic_bps : 0;
      tx.queue_cap = config.nic_queue_pkts;
    }
    for (uint16_t j = 0; j < n; ++j) {
      FifoServer& link = servers_[LinkId(i, j)];
      link.kind = ServerKind::kLink;
      link.rate_bps = config.internal_link_bps;
      link.queue_cap = config.link_queue_pkts;
    }

    VlbConfig vc = config.vlb;
    vc.num_nodes = n;
    vc.seed = config.seed ^ (i * 0x51ed2705ULL);
    vlb_.push_back(std::make_unique<DirectVlbRouter>(vc, i));
    vlb_.back()->set_health(&health_);

    if (config.admission.enabled) {
      admission_.push_back(std::make_unique<AdmissionDrr>(config.admission, n));
      admission_.back()->set_health(&health_);
    }
  }
  delivered_by_src_.assign(n, 0);
  delivered_by_dst_.assign(n, 0);
  delivered_bytes_by_src_.assign(n, 0);
  delivered_bytes_by_dst_.assign(n, 0);
  if (config.stateful.enabled) {
    stateful_ = std::make_unique<StatefulPlane>(config.stateful, n);
  }
  ScheduleFailures();
}

void ClusterSim::ScheduleFailures() {
  for (const FailureEvent& fe : config_.failures.events()) {
    bool node_ev = fe.kind == FailureKind::kNodeDown || fe.kind == FailureKind::kNodeUp;
    RB_CHECK_MSG(fe.node < config_.num_nodes && (node_ev || fe.peer < config_.num_nodes),
                 "failure event references a node outside the cluster");
    Event ev;
    ev.time = fe.time;
    ev.kind = Event::Kind::kFail;
    ev.fail_index = static_cast<uint32_t>(failure_log_.size());
    failure_log_.push_back(FailureLogEntry{fe, fe.time, fe.time + config_.failure_detection_delay});
    events_.push(ev);
  }
}

TimelineBucket* ClusterSim::BucketFor(SimTime t) {
  if (config_.timeline_window <= 0) {
    return nullptr;
  }
  size_t idx = static_cast<size_t>(t / config_.timeline_window);
  if (idx >= timeline_.size()) {
    timeline_.resize(idx + 1);
  }
  return &timeline_[idx];
}

void ClusterSim::DisableServer(uint32_t server_id, bool disabled, SimTime now) {
  FifoServer& server = servers_[server_id];
  server.disabled = disabled;
  if (!disabled) {
    return;
  }
  // Blackhole everything queued behind the job in service. The in-service
  // job stays (its completion event is already scheduled) and is
  // blackholed when that completion fires on the still-disabled server.
  size_t keep = server.busy ? 1 : 0;
  while (server.queue.size() > keep) {
    ServerJob job = server.queue.back();
    server.queue.pop_back();
    DropFailed(job.packet_slot, server.kind == ServerKind::kLink, now);
  }
}

void ClusterSim::SetNodeServersDisabled(uint16_t node, bool disabled, SimTime now) {
  DisableServer(CpuId(node), disabled, now);
  DisableServer(ExtOutId(node), disabled, now);
  for (int k = 0; k < num_nics_per_node(); ++k) {
    DisableServer(NicRxId(node, k), disabled, now);
    DisableServer(NicTxId(node, k), disabled, now);
  }
}

void ClusterSim::ApplyFailure(uint32_t fail_index, SimTime now) {
  FailureLogEntry& log = failure_log_[fail_index];
  log.applied = now;
  const FailureEvent& fe = log.event;
  switch (fe.kind) {
    case FailureKind::kNodeDown:
      node_alive_[fe.node] = 0;
      SetNodeServersDisabled(fe.node, true, now);
      if (stateful_ != nullptr) {
        stateful_->OnNodeDown(fe.node);
      }
      break;
    case FailureKind::kNodeUp:
      node_alive_[fe.node] = 1;
      SetNodeServersDisabled(fe.node, false, now);
      if (stateful_ != nullptr) {
        stateful_->OnNodeUp(fe.node);
      }
      break;
    case FailureKind::kLinkDown:
      DisableServer(LinkId(fe.node, fe.peer), true, now);
      break;
    case FailureKind::kLinkUp:
      DisableServer(LinkId(fe.node, fe.peer), false, now);
      break;
  }
  stats_.failure_events_applied++;
  // Routing reacts only when the detector fires.
  Event ev;
  ev.time = now + config_.failure_detection_delay;
  ev.kind = Event::Kind::kDetect;
  ev.fail_index = fail_index;
  events_.push(ev);
}

void ClusterSim::ApplyDetection(uint32_t fail_index, SimTime now) {
  FailureLogEntry& log = failure_log_[fail_index];
  log.detected = now;
  const FailureEvent& fe = log.event;
  switch (fe.kind) {
    case FailureKind::kNodeDown:
      health_.SetNodeAlive(fe.node, false);
      for (auto& vlb : vlb_) {
        vlb->OnNodeUnhealthy(fe.node);
      }
      if (stateful_ != nullptr) {
        // Ownership fails over at *detection*, like VLB rerouting: the
        // shared baseline loses the shard, SCR replays it.
        stateful_->OnNodeDetectedDown(fe.node);
      }
      break;
    case FailureKind::kNodeUp:
      health_.SetNodeAlive(fe.node, true);
      break;
    case FailureKind::kLinkDown:
      health_.SetLinkUp(fe.node, fe.peer, false);
      for (auto& vlb : vlb_) {
        vlb->OnLinkUnhealthy(fe.node, fe.peer);
      }
      break;
    case FailureKind::kLinkUp:
      health_.SetLinkUp(fe.node, fe.peer, true);
      break;
  }
}

uint32_t ClusterSim::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  packets_.push_back(InFlight{});
  return static_cast<uint32_t>(packets_.size() - 1);
}

void ClusterSim::ReleaseSlot(uint32_t slot) {
  packets_[slot].active = false;
  free_slots_.push_back(slot);
}

double ClusterSim::ServiceSecondsFor(const FifoServer& server, const InFlight& pkt) const {
  switch (server.kind) {
    case ServerKind::kCpu: {
      double cycles;
      if (pkt.stage == Stage::kCpuIngress) {
        cycles = config_.ingress_cycles.At(pkt.bytes);
        if (config_.vlb.flowlets) {
          cycles += config_.reorder_avoidance_cycles;
        }
      } else {
        cycles = config_.transit_cycles.At(pkt.bytes);
      }
      return cycles / server.cycles_per_sec;
    }
    case ServerKind::kExtRxNic:
    case ServerKind::kRxNic:
    case ServerKind::kTxNic:
    case ServerKind::kLink:
    case ServerKind::kExtOut:
      return server.rate_bps > 0 ? static_cast<double>(pkt.bytes) * 8.0 / server.rate_bps : 0.0;
  }
  return 0.0;
}

void ClusterSim::BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                               SimTime probe_interval) {
  RB_CHECK_MSG(stats_.offered_packets == 0, "BindTelemetry must precede Inject");
  if (!telemetry::Enabled()) {
    return;
  }
  tele_registry_ = registry;
  tele_tracer_ = tracer;
  if (registry != nullptr) {
    // Same range/resolution as ClusterRunStats::latency so both views of
    // the latency distribution agree bucket-for-bucket.
    telemetry::HistogramOptions opts;
    opts.lo = 0;
    opts.hi = 500e-6;
    opts.buckets = 250;
    tele_latency_ = registry->GetHistogram("des/latency_s", opts);
  }
  if (tracer != nullptr) {
    BuildTraceScopes();
  }
  if (probe_interval > 0) {
    probe_interval_ = probe_interval;
    next_probe_ = probe_interval;
    uint16_t n = config_.num_nodes;
    probe_series_.resize(2 * static_cast<size_t>(n));
    for (uint16_t i = 0; i < n; ++i) {
      probe_series_[i].name = Format("des/node%u/cpu_queue_depth", i);
      probe_series_[n + i].name = Format("des/node%u/ext_out_queue_depth", i);
    }
  }
}

void ClusterSim::BuildTraceScopes() {
  // One interning pass at bind time covers every hop label a packet can
  // ever record; the event loop then deals only in 32-bit ScopeIds.
  trace_scopes_ = std::make_unique<TraceScopes>();
  TraceScopes& s = *trace_scopes_;
  const uint16_t n = config_.num_nodes;
  const char* stage_fmt[8] = {"ext-rx@%u",  "cpu-ingress@%u", "tx-nic@%u",      nullptr,
                              "rx-nic@%u",  "cpu-transit@%u", "cpu-egress@%u",  "ext-out@%u"};
  for (int st = 0; st < 8; ++st) {
    if (stage_fmt[st] == nullptr) {
      continue;
    }
    s.stage[st].resize(n);
    for (uint16_t i = 0; i < n; ++i) {
      s.stage[st][i] = telemetry::InternScopeName(Format(stage_fmt[st], i));
    }
  }
  s.inject.resize(n);
  s.drop_node_fail.resize(n);
  s.drop_link_fail.resize(n);
  s.drop_admission.resize(n);
  s.link.resize(static_cast<size_t>(n) * n);
  s.drop.resize(6 * static_cast<size_t>(n));
  for (uint16_t i = 0; i < n; ++i) {
    s.inject[i] = telemetry::InternScopeName(Format("inject@%u", i));
    s.drop_node_fail[i] = telemetry::InternScopeName(Format("drop-node-fail@%u", i));
    s.drop_link_fail[i] = telemetry::InternScopeName(Format("drop-link-fail@%u", i));
    s.drop_admission[i] = telemetry::InternScopeName(Format("drop-admission@%u", i));
    for (uint16_t j = 0; j < n; ++j) {
      s.link[static_cast<size_t>(i) * n + j] =
          telemetry::InternScopeName(Format("link@%u-%u", i, j));
    }
    for (int k = 0; k < 6; ++k) {
      s.drop[static_cast<size_t>(k) * n + i] = telemetry::InternScopeName(
          Format("drop-%s@%u", ServerKindName(static_cast<ServerKind>(k)), i));
    }
  }
}

telemetry::ScopeId ClusterSim::StageScope(const InFlight& pkt) const {
  const TraceScopes& s = *trace_scopes_;
  switch (pkt.stage) {
    case Stage::kLink:
      return s.link[static_cast<size_t>(pkt.cur) * config_.num_nodes + pkt.nxt];
    case Stage::kRxNic:
      return s.stage[static_cast<size_t>(Stage::kRxNic)][pkt.nxt];
    case Stage::kExtOut:
      return s.stage[static_cast<size_t>(Stage::kExtOut)][pkt.dst];
    default:
      return s.stage[static_cast<size_t>(pkt.stage)][pkt.cur];
  }
}

void ClusterSim::ProbeQueues(SimTime t) {
  uint16_t n = config_.num_nodes;
  for (uint16_t i = 0; i < n; ++i) {
    probe_series_[i].Record(t, static_cast<double>(servers_[CpuId(i)].queue.size()));
    probe_series_[n + i].Record(t, static_cast<double>(servers_[ExtOutId(i)].queue.size()));
  }
}

void ClusterSim::MaybeProbe() {
  // Sampled just before the first event at-or-after each probe mark, so
  // the depths reflect the state as of the mark (no event in between).
  while (probe_interval_ > 0 && now_ >= next_probe_) {
    ProbeQueues(next_probe_);
    next_probe_ += probe_interval_;
  }
}

void ClusterSim::DropFailed(uint32_t slot, bool link, SimTime now) {
  InFlight& pkt = packets_[slot];
  if (pkt.trace != 0) {
    tele_tracer_->Abandon(
        pkt.trace,
        link ? trace_scopes_->drop_link_fail[pkt.cur] : trace_scopes_->drop_node_fail[pkt.cur],
        now);
  }
  if (link) {
    stats_.drops.failed_link++;
  } else {
    stats_.drops.failed_node++;
  }
  if (TimelineBucket* b = BucketFor(now)) {
    b->dropped++;
    b->failed_dropped++;
  }
  ReleaseSlot(slot);
}

void ClusterSim::DropAdmission(uint32_t slot, SimTime now) {
  InFlight& pkt = packets_[slot];
  if (pkt.trace != 0) {
    tele_tracer_->Abandon(pkt.trace, trace_scopes_->drop_admission[pkt.cur], now);
  }
  static const telemetry::ScopeId kAdmScope = telemetry::InternScopeName("admission");
  telemetry::FrRecord(telemetry::FrEvent::kAdmissionDrop, kAdmScope, pkt.dst, pkt.bytes);
  stats_.drops.admission++;
  if (TimelineBucket* b = BucketFor(now)) {
    b->dropped++;
  }
  ReleaseSlot(slot);
}

void ClusterSim::DropAt(ServerKind kind, uint32_t slot, SimTime now) {
  InFlight& pkt = packets_[slot];
  if (pkt.trace != 0) {
    tele_tracer_->Abandon(
        pkt.trace,
        trace_scopes_->drop[static_cast<size_t>(kind) * config_.num_nodes + pkt.cur], now);
  }
  if (TimelineBucket* b = BucketFor(now)) {
    b->dropped++;
  }
  switch (kind) {
    case ServerKind::kExtRxNic:
      stats_.drops.ext_rx_nic++;
      break;
    case ServerKind::kCpu:
      stats_.drops.cpu++;
      break;
    case ServerKind::kTxNic:
      stats_.drops.tx_nic++;
      break;
    case ServerKind::kLink:
      stats_.drops.link++;
      break;
    case ServerKind::kRxNic:
      stats_.drops.rx_nic++;
      break;
    case ServerKind::kExtOut:
      stats_.drops.ext_out++;
      break;
  }
  ReleaseSlot(slot);
}

void ClusterSim::ArriveAt(uint32_t server_id, uint32_t slot, SimTime now) {
  FifoServer& server = servers_[server_id];
  InFlight& pkt = packets_[slot];
  if (server.disabled) {
    // The node (or directed link) is down: the packet vanishes into it.
    DropFailed(slot, server.kind == ServerKind::kLink, now);
    return;
  }
  ServerJob job;
  job.packet_slot = slot;
  job.service_seconds = ServiceSecondsFor(server, pkt);
  job.arrival = now;
  if (!server.Enqueue(job)) {
    // Distinguish the external-ingress rx drop from internal rx drops for
    // the stats breakdown.
    DropAt(pkt.stage == Stage::kExtRx ? ServerKind::kExtRxNic : server.kind, slot, now);
    return;
  }
  if (!server.busy) {
    StartService(server_id, now);
  }
}

void ClusterSim::StartService(uint32_t server_id, SimTime now) {
  FifoServer& server = servers_[server_id];
  RB_CHECK(!server.busy && !server.queue.empty());
  server.busy = true;
  // Queueing wait at this server, kept with the packet until its hop is
  // stamped at service completion (ForwardAfter / Deliver).
  packets_[server.queue.front().packet_slot].wait = now - server.queue.front().arrival;
  Event ev;
  ev.time = now + server.queue.front().service_seconds;
  ev.kind = Event::Kind::kCompletion;
  ev.server = server_id;
  events_.push(ev);
}

void ClusterSim::OnServiceComplete(uint32_t server_id, SimTime now) {
  FifoServer& server = servers_[server_id];
  RB_CHECK(server.busy && !server.queue.empty());
  if (server.disabled) {
    // The server died while this job was in service: the packet is lost
    // with it. (Anything queued behind it was already blackholed when the
    // server was disabled.)
    ServerJob job = server.queue.front();
    server.queue.pop_front();
    server.busy = false;
    DropFailed(job.packet_slot, server.kind == ServerKind::kLink, now);
    return;
  }
  ServerJob job = server.queue.front();
  server.queue.pop_front();
  server.busy = false;
  server.served++;
  server.busy_time += job.service_seconds;
  server.bytes += packets_[job.packet_slot].bytes;
  if (!server.queue.empty()) {
    StartService(server_id, now);
  }
  ForwardAfter(job.packet_slot, now);
}

void ClusterSim::ForwardAfter(uint32_t slot, SimTime now) {
  InFlight& pkt = packets_[slot];
  // A stage's service just completed; stamp the hop with its queueing
  // wait (the final ext-out hop is stamped by EndTrace in Deliver).
  if (pkt.trace != 0 && pkt.stage != Stage::kExtOut) {
    tele_tracer_->Record(pkt.trace, StageScope(pkt), now, pkt.wait);
  }
  auto schedule_arrival = [&](uint32_t server_id, SimTime when) {
    Event ev;
    ev.time = when;
    ev.kind = Event::Kind::kArrival;
    ev.packet_slot = slot;
    ev.arrival_server = server_id;
    events_.push(ev);
  };

  switch (pkt.stage) {
    case Stage::kExtRx:
      // Fair ingress admission sits between the ext-rx NIC and the
      // ingress CPU: the monitored depth is the CPU queue this packet is
      // about to join (the first queue overload actually fills).
      if (!admission_.empty()) {
        AdmissionDrr& adm = *admission_[pkt.cur];
        if (!adm.Admit(pkt.dst, pkt.bytes, now, servers_[CpuId(pkt.cur)].queue.size())) {
          DropAdmission(slot, now);
          break;
        }
      }
      pkt.stage = Stage::kCpuIngress;
      ArriveAt(CpuId(pkt.cur), slot, now);
      break;

    case Stage::kCpuIngress: {
      if (stateful_ != nullptr) {
        // The per-flow state update (NAT mapping, byte counters, SCR log
        // append) runs at the ingress CPU, after admission and before the
        // VLB decision. Ticks are simulated microseconds.
        stateful_->Apply(pkt.flow_id, pkt.bytes, static_cast<uint32_t>(now * 1e6));
      }
      if (pkt.src == pkt.dst) {
        pkt.direct = true;
        pkt.stage = Stage::kExtOut;
        schedule_arrival(ExtOutId(pkt.dst), now + config_.node_fixed_latency);
        break;
      }
      VlbDecision decision =
          vlb_[pkt.src]->Route(pkt.dst, pkt.flow_id, pkt.bytes, now);
      pkt.direct = decision.direct;
      pkt.nxt = decision.direct ? pkt.dst : decision.via;
      pkt.stage = Stage::kTxNic;
      schedule_arrival(NicTxId(pkt.cur, NicForPeer(pkt.cur, pkt.nxt)),
                       now + config_.node_fixed_latency);
      break;
    }

    case Stage::kTxNic:
      pkt.stage = Stage::kLink;
      ArriveAt(LinkId(pkt.cur, pkt.nxt), slot, now);
      break;

    case Stage::kLink:
      pkt.stage = Stage::kRxNic;
      schedule_arrival(NicRxId(pkt.nxt, NicForPeer(pkt.nxt, pkt.cur)),
                       now + config_.link_propagation);
      break;

    case Stage::kRxNic:
      pkt.cur = pkt.nxt;
      pkt.stage = pkt.cur == pkt.dst ? Stage::kCpuEgress : Stage::kCpuTransit;
      ArriveAt(CpuId(pkt.cur), slot, now);
      break;

    case Stage::kCpuTransit:
      pkt.nxt = pkt.dst;
      pkt.stage = Stage::kTxNic;
      schedule_arrival(NicTxId(pkt.cur, NicForPeer(pkt.cur, pkt.dst)),
                       now + config_.node_fixed_latency);
      break;

    case Stage::kCpuEgress:
      pkt.stage = Stage::kExtOut;
      schedule_arrival(ExtOutId(pkt.dst), now + config_.node_fixed_latency);
      break;

    case Stage::kExtOut:
      Deliver(slot, now);
      break;
  }
}

void ClusterSim::RecordDelivery(const InFlight& pkt, SimTime delivered) {
  stats_.delivered_packets++;
  stats_.delivered_bytes += pkt.bytes;
  if (TimelineBucket* b = BucketFor(delivered)) {
    b->delivered++;
    b->latency_sum += delivered - pkt.injected;
  }
  delivered_by_src_[pkt.src]++;
  delivered_by_dst_[pkt.dst]++;
  delivered_bytes_by_src_[pkt.src] += pkt.bytes;
  delivered_bytes_by_dst_[pkt.dst] += pkt.bytes;
  stats_.latency.Add(delivered - pkt.injected);
  if (tele_latency_ != nullptr) {
    tele_latency_->Observe(delivered - pkt.injected);
  }
  // Deliveries happen in global time order, so feeding the detector here
  // measures true on-the-wire reordering.
  reorder_.Deliver(pkt.flow_id, pkt.flow_seq);
}

void ClusterSim::ResequenceDeliver(const InFlight& pkt, SimTime delivered) {
  FlowReseq& fr = reseq_[pkt.flow_id];
  auto release_held = [&](SimTime when) {
    InFlight ghost;
    ghost.flow_id = pkt.flow_id;
    auto it = fr.held.begin();
    ghost.flow_seq = it->first;
    ghost.src = it->second.src;
    ghost.dst = it->second.dst;
    ghost.bytes = it->second.bytes;
    ghost.injected = it->second.injected;
    reseq_delay_.Add(when - it->second.ready);
    RecordDelivery(ghost, when);
    fr.held.erase(it);
    fr.next_seq = ghost.flow_seq + 1;
  };

  // Time out stale holes first: if the oldest held packet has waited past
  // the timeout, give up on the missing sequence numbers.
  while (!fr.held.empty() &&
         delivered - fr.held.begin()->second.ready > config_.resequence_timeout) {
    reseq_timeouts_++;
    release_held(delivered);
    while (!fr.held.empty() && fr.held.begin()->first == fr.next_seq) {
      release_held(delivered);
    }
  }

  if (pkt.flow_seq < fr.next_seq) {
    // Arrived after its hole was timed out: deliver late (counts as
    // reordered — the resequencer gave up on it).
    RecordDelivery(pkt, delivered);
    return;
  }
  if (pkt.flow_seq == fr.next_seq) {
    reseq_delay_.Add(0);
    RecordDelivery(pkt, delivered);
    fr.next_seq++;
    while (!fr.held.empty() && fr.held.begin()->first == fr.next_seq) {
      release_held(delivered);
    }
    return;
  }
  HeldPkt held;
  held.ready = delivered;
  held.src = pkt.src;
  held.dst = pkt.dst;
  held.bytes = pkt.bytes;
  held.injected = pkt.injected;
  fr.held.emplace(pkt.flow_seq, held);
}

void ClusterSim::FlushResequencers() {
  for (auto& [flow_id, fr] : reseq_) {
    for (auto& [seq, held] : fr.held) {
      InFlight ghost;
      ghost.flow_id = flow_id;
      ghost.flow_seq = seq;
      ghost.src = held.src;
      ghost.dst = held.dst;
      ghost.bytes = held.bytes;
      ghost.injected = held.injected;
      RecordDelivery(ghost, held.ready);
    }
    fr.held.clear();
  }
}

void ClusterSim::Deliver(uint32_t slot, SimTime now) {
  InFlight& pkt = packets_[slot];
  RB_PROF_WORK(1, pkt.bytes);
  if (pkt.trace != 0) {
    tele_tracer_->EndTrace(pkt.trace, StageScope(pkt), now, pkt.wait);
  }
  if (config_.resequence) {
    ResequenceDeliver(pkt, now);
  } else {
    RecordDelivery(pkt, now);
  }
  ReleaseSlot(slot);
}

void ClusterSim::ProcessEvent(const Event& ev) {
  now_ = ev.time;
  MaybeProbe();
  switch (ev.kind) {
    case Event::Kind::kCompletion: {
#if defined(RB_PROFILE) && RB_PROFILE
      RB_PROF_SCOPE(
          DesScopes().completion[static_cast<size_t>(servers_[ev.server].kind) % 6]);
#endif
      OnServiceComplete(ev.server, now_);
      break;
    }
    case Event::Kind::kArrival: {
#if defined(RB_PROFILE) && RB_PROFILE
      RB_PROF_SCOPE(DesScopes().arrival);
#endif
      ArriveAt(ev.arrival_server, ev.packet_slot, now_);
      break;
    }
    case Event::Kind::kFail:
    case Event::Kind::kDetect: {
#if defined(RB_PROFILE) && RB_PROFILE
      RB_PROF_SCOPE(DesScopes().failure);
#endif
      if (ev.kind == Event::Kind::kFail) {
        ApplyFailure(ev.fail_index, now_);
      } else {
        ApplyDetection(ev.fail_index, now_);
      }
      break;
    }
  }
}

void ClusterSim::AdvanceTo(SimTime t) {
  while (!events_.empty() && events_.top().time <= t) {
    Event ev = events_.top();
    events_.pop();
    ProcessEvent(ev);
  }
  if (t > now_) {
    now_ = t;
    MaybeProbe();
  }
}

void ClusterSim::Inject(uint16_t src, uint16_t dst, uint64_t flow_id, uint64_t flow_seq,
                        uint32_t bytes, SimTime t) {
  RB_CHECK(src < config_.num_nodes && dst < config_.num_nodes);
  RB_CHECK(!finished_);
  AdvanceTo(t);
  stats_.offered_packets++;
  stats_.offered_bytes += bytes;
  if (TimelineBucket* b = BucketFor(t)) {
    b->offered++;
  }
  uint32_t slot = AllocSlot();
  InFlight& pkt = packets_[slot];
  pkt = InFlight{};
  pkt.src = src;
  pkt.dst = dst;
  pkt.cur = src;
  pkt.nxt = src;
  pkt.bytes = bytes;
  pkt.flow_id = flow_id;
  pkt.flow_seq = flow_seq;
  pkt.injected = t;
  pkt.stage = Stage::kExtRx;
  pkt.active = true;
  if (tele_tracer_ != nullptr) {
    pkt.trace = tele_tracer_->StartTrace(trace_scopes_->inject[src], t);
  }
  ArriveAt(NicRxId(src, NicIndexForPort(0)), slot, t);
}

ClusterRunStats ClusterSim::Finish(SimTime duration) {
  RB_CHECK(!finished_);
  finished_ = true;
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    ProcessEvent(ev);
  }
  if (config_.resequence) {
    FlushResequencers();
  }

  stats_.duration = duration;
  uint16_t n = config_.num_nodes;
  stats_.per_output_bps.assign(n, 0);
  stats_.per_input_delivered_bps.assign(n, 0);
  for (uint16_t i = 0; i < n; ++i) {
    stats_.per_output_bps[i] =
        duration > 0 ? static_cast<double>(delivered_bytes_by_dst_[i]) * 8.0 / duration : 0;
    stats_.per_input_delivered_bps[i] =
        duration > 0 ? static_cast<double>(delivered_bytes_by_src_[i]) * 8.0 / duration : 0;
    stats_.direct_packets += vlb_[i]->direct_packets();
    stats_.balanced_packets += vlb_[i]->balanced_packets();
    stats_.failover_reroutes += vlb_[i]->failover_reroutes();
    stats_.flowlet_repins += vlb_[i]->flowlet_repins();
    stats_.flowlets_invalidated += vlb_[i]->flowlets_invalidated();
  }
  stats_.failure_log = failure_log_;
  stats_.timeline = std::move(timeline_);
  if (stateful_ != nullptr) {
    stats_.stateful = stateful_->stats();
  }
  uint64_t total = reorder_.total_packets();
  stats_.reorder_packet_fraction =
      total ? static_cast<double>(reorder_.reordered_packets()) / static_cast<double>(total) : 0;
  stats_.reorder_sequence_fraction =
      total ? static_cast<double>(reorder_.reordered_sequences()) / static_cast<double>(total) : 0;
  stats_.resequencer_added_delay_mean = reseq_delay_.mean();
  stats_.resequencer_timeouts = reseq_timeouts_;
  if (tele_registry_ != nullptr) {
    FinishTelemetry(duration);
  }
  return stats_;
}

void ClusterSim::FinishTelemetry(SimTime duration) {
  telemetry::MetricRegistry& r = *tele_registry_;
  r.GetCounter("des/offered_packets")->Add(stats_.offered_packets);
  r.GetCounter("des/delivered_packets")->Add(stats_.delivered_packets);
  r.GetCounter("des/drops/ext_rx_nic")->Add(stats_.drops.ext_rx_nic);
  r.GetCounter("des/drops/cpu")->Add(stats_.drops.cpu);
  r.GetCounter("des/drops/tx_nic")->Add(stats_.drops.tx_nic);
  r.GetCounter("des/drops/link")->Add(stats_.drops.link);
  r.GetCounter("des/drops/rx_nic")->Add(stats_.drops.rx_nic);
  r.GetCounter("des/drops/ext_out")->Add(stats_.drops.ext_out);
  r.GetCounter("des/drops/failed_node")->Add(stats_.drops.failed_node);
  r.GetCounter("des/drops/failed_link")->Add(stats_.drops.failed_link);
  r.GetCounter("des/drops/admission")->Add(stats_.drops.admission);
  if (!admission_.empty()) {
    uint64_t engage_events = 0;
    uint64_t dropped_dead = 0;
    for (const auto& adm : admission_) {
      engage_events += adm->engage_events();
      dropped_dead += adm->dropped_dead();
    }
    r.GetCounter("des/admission/engage_events")->Add(engage_events);
    r.GetCounter("des/admission/dropped_dead")->Add(dropped_dead);
  }
  if (stateful_ != nullptr) {
    stateful_->ExportTelemetry(&r, "");
  }
  if (!failure_log_.empty()) {
    r.GetCounter("des/failures/events")->Add(stats_.failure_events_applied);
    r.GetCounter("des/failures/rerouted_packets")->Add(stats_.failover_reroutes);
    r.GetCounter("des/failures/flowlet_repins")->Add(stats_.flowlet_repins);
    r.GetCounter("des/failures/flowlets_invalidated")->Add(stats_.flowlets_invalidated);
    r.GetGauge("des/failures/detection_delay_s")->Set(config_.failure_detection_delay);
    // Time from the last recovery (node/link up) to its detection — the
    // interval during which capacity was back but routing still avoided it.
    for (const FailureLogEntry& log : failure_log_) {
      if (log.event.kind == FailureKind::kNodeUp || log.event.kind == FailureKind::kLinkUp) {
        r.GetGauge("des/failures/last_recovery_detect_s")->Set(log.detected);
      }
    }
  }
  for (uint16_t i = 0; i < config_.num_nodes; ++i) {
    const FifoServer& cpu = servers_[CpuId(i)];
    r.GetCounter(Format("des/node%u/cpu/served", i))->Add(cpu.served);
    r.GetGauge(Format("des/node%u/cpu/utilization", i))
        ->Set(duration > 0 ? cpu.busy_time / duration : 0);
    const FifoServer& out = servers_[ExtOutId(i)];
    r.GetCounter(Format("des/node%u/ext_out/served", i))->Add(out.served);
    r.GetGauge(Format("des/node%u/ext_out/utilization", i))
        ->Set(duration > 0 ? out.busy_time / duration : 0);
    r.GetGauge(Format("des/node%u/delivered_bps", i))->Set(stats_.per_output_bps[i]);
  }
}

size_t ClusterSim::resequencer_held() const {
  size_t held = 0;
  for (const auto& [flow_id, fr] : reseq_) {
    held += fr.held.size();
  }
  return held;
}

std::string AuditConservation(const ClusterRunStats& stats) {
  const ClusterDrops& d = stats.drops;
  const uint64_t accounted = stats.delivered_packets + d.total();
  if (accounted != stats.offered_packets) {
    return Format("conservation violated: offered %llu != delivered %llu + drops %llu",
                  static_cast<unsigned long long>(stats.offered_packets),
                  static_cast<unsigned long long>(stats.delivered_packets),
                  static_cast<unsigned long long>(d.total()));
  }
  // Cross-check the per-window timeline against the aggregate counters:
  // every offered/delivered/dropped packet must land in exactly one
  // bucket, so the bucket sums reproduce the totals exactly.
  if (!stats.timeline.empty()) {
    uint64_t offered = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    for (const TimelineBucket& b : stats.timeline) {
      offered += b.offered;
      delivered += b.delivered;
      dropped += b.dropped;
    }
    if (offered != stats.offered_packets) {
      return Format("timeline offered sum %llu != offered %llu",
                    static_cast<unsigned long long>(offered),
                    static_cast<unsigned long long>(stats.offered_packets));
    }
    if (delivered != stats.delivered_packets) {
      return Format("timeline delivered sum %llu != delivered %llu",
                    static_cast<unsigned long long>(delivered),
                    static_cast<unsigned long long>(stats.delivered_packets));
    }
    if (dropped != d.total()) {
      return Format("timeline dropped sum %llu != drops total %llu",
                    static_cast<unsigned long long>(dropped),
                    static_cast<unsigned long long>(d.total()));
    }
  }
  return "";
}

void ClusterSim::AddHandlers(telemetry::HandlerRegistry* handlers) {
  RB_CHECK(handlers != nullptr);
  handlers->AddRead("cluster.nodes",
                    [this] { return Format("%u", static_cast<unsigned>(config_.num_nodes)); });
  handlers->AddRead("cluster.offered", [this] {
    return Format("%llu", static_cast<unsigned long long>(current_offered()));
  });
  handlers->AddRead("cluster.delivered", [this] {
    return Format("%llu", static_cast<unsigned long long>(current_delivered()));
  });
  handlers->AddRead("cluster.in_flight", [this] {
    return Format("%zu", in_flight());
  });
  handlers->AddRead("cluster.drops", [this] {
    const ClusterDrops& d = stats_.drops;
    return Format(
        "ext_rx_nic=%llu cpu=%llu tx_nic=%llu link=%llu rx_nic=%llu ext_out=%llu "
        "failed_node=%llu failed_link=%llu admission=%llu total=%llu",
        static_cast<unsigned long long>(d.ext_rx_nic), static_cast<unsigned long long>(d.cpu),
        static_cast<unsigned long long>(d.tx_nic), static_cast<unsigned long long>(d.link),
        static_cast<unsigned long long>(d.rx_nic), static_cast<unsigned long long>(d.ext_out),
        static_cast<unsigned long long>(d.failed_node),
        static_cast<unsigned long long>(d.failed_link),
        static_cast<unsigned long long>(d.admission),
        static_cast<unsigned long long>(d.total()));
  });
  handlers->AddRead("cluster.node_loads", [this] {
    // One line per node: CPU queue depth and delivered count — the live
    // imbalance view rb_top renders.
    std::string out;
    for (uint16_t i = 0; i < config_.num_nodes; ++i) {
      out += Format("node=%u cpu_queue=%zu served=%llu delivered=%llu alive=%d\n", i,
                    servers_[CpuId(i)].queue.size(),
                    static_cast<unsigned long long>(servers_[CpuId(i)].served),
                    static_cast<unsigned long long>(delivered_by_dst_[i]),
                    node_alive_[i] != 0 ? 1 : 0);
    }
    return out;
  });
  handlers->AddRead("cluster.health", [this] {
    std::string out;
    for (uint16_t i = 0; i < config_.num_nodes; ++i) {
      out += Format("node=%u believed_alive=%d\n", i, health_.NodeAlive(i) ? 1 : 0);
    }
    return out;
  });
  if (stateful_ != nullptr) {
    stateful_->AddHandlers(handlers, "cluster.stateful");
  }
  if (!admission_.empty()) {
    handlers->AddRead("admission.engaged", [this] {
      std::string out;
      for (uint16_t i = 0; i < config_.num_nodes; ++i) {
        const AdmissionDrr& a = *admission_[i];
        out += Format("node=%u engaged=%d offered_bps=%.3e dropped=%llu\n", i,
                      a.engaged() ? 1 : 0, a.offered_bps(),
                      static_cast<unsigned long long>(a.dropped_packets()));
      }
      return out;
    });
    handlers->AddRead("admission.force", [this] {
      switch (admission_[0]->force()) {
        case AdmissionForce::kOn:
          return std::string("on");
        case AdmissionForce::kOff:
          return std::string("off");
        case AdmissionForce::kAuto:
          break;
      }
      return std::string("auto");
    });
    handlers->AddWrite("admission.force", [this](const std::string& value) {
      AdmissionForce f;
      if (value == "auto") {
        f = AdmissionForce::kAuto;
      } else if (value == "on") {
        f = AdmissionForce::kOn;
      } else if (value == "off") {
        f = AdmissionForce::kOff;
      } else {
        return telemetry::HandlerResult::Error("expected auto|on|off");
      }
      for (auto& a : admission_) {
        a->set_force(f);
      }
      return telemetry::HandlerResult::Ok();
    });
  }
}

NodeStats ClusterSim::node_stats(uint16_t i) const {
  NodeStats ns;
  const FifoServer& cpu = servers_[CpuId(i)];
  ns.cpu_served = cpu.served;
  ns.cpu_busy_seconds = cpu.busy_time;
  ns.delivered = delivered_by_dst_[i];
  ns.delivered_bytes = delivered_bytes_by_dst_[i];
  ns.alive = node_alive_[i] != 0;
  return ns;
}

ClusterRunStats ClusterSim::RunUniform(const TrafficMatrix& tm, double per_input_bps,
                                       SizeDistribution* sizes, SimTime duration,
                                       uint32_t flows_per_pair) {
  RB_CHECK(tm.num_nodes() == config_.num_nodes);
  RB_CHECK(per_input_bps > 0);
  Rng rng(config_.seed * 7919 + 13);
  uint16_t n = config_.num_nodes;
  double mean_gap = sizes->MeanSize() * 8.0 / per_input_bps;

  std::vector<SimTime> next_arrival(n, 0);
  std::vector<bool> active(n, false);
  for (uint16_t i = 0; i < n; ++i) {
    active[i] = tm.InputActive(i);
    next_arrival[i] = active[i] ? rng.NextExponential(mean_gap) : duration;
  }
  std::unordered_map<uint64_t, uint64_t> flow_seq;

  while (true) {
    uint16_t src = 0;
    SimTime t = duration;
    for (uint16_t i = 0; i < n; ++i) {
      if (active[i] && next_arrival[i] < t) {
        t = next_arrival[i];
        src = i;
      }
    }
    if (t >= duration) {
      break;
    }
    uint16_t dst = tm.SampleOutput(src, &rng);
    uint32_t bytes = sizes->NextSize(&rng);
    uint64_t flow_id =
        (static_cast<uint64_t>(src) * n + dst) * flows_per_pair + rng.NextBounded(flows_per_pair);
    uint64_t seq = flow_seq[flow_id]++;
    Inject(src, dst, flow_id, seq, bytes, t);
    next_arrival[src] = t + rng.NextExponential(mean_gap);
  }
  return Finish(duration);
}

ClusterRunStats ClusterSim::RunSinglePairTrace(FlowTrafficGenerator* gen, uint16_t src,
                                               uint16_t dst, SimTime duration) {
  RB_CHECK(gen != nullptr);
  while (true) {
    FlowTrafficGenerator::Item item = gen->Next();
    if (item.time >= duration) {
      break;
    }
    Inject(src, dst, item.spec.flow_id, item.spec.flow_seq, item.spec.size, item.time);
  }
  return Finish(duration);
}

}  // namespace rb
