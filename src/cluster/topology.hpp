// Cluster interconnect topologies (§3.3).
//
// FullMeshTopology: every node links to every other (the RB4 layout).
// KAryNFlyTopology: a generalized butterfly interconnecting N terminals
// through n = ceil(log_k N) stages of k-degree switch nodes — used when
// the port count exceeds a server's fanout. The fly here provides node
// counts and hop paths for the sizing calculator and tests; the DES runs
// on the mesh (as the paper's prototype does).
#ifndef RB_CLUSTER_TOPOLOGY_HPP_
#define RB_CLUSTER_TOPOLOGY_HPP_

#include <cstdint>
#include <vector>

namespace rb {

class FullMeshTopology {
 public:
  explicit FullMeshTopology(uint16_t num_nodes);

  uint16_t num_nodes() const { return n_; }
  // Every distinct pair is directly connected.
  bool Connected(uint16_t a, uint16_t b) const { return a != b; }
  // Links per node.
  uint16_t Degree() const { return static_cast<uint16_t>(n_ - 1); }
  // Hops for a direct (1) or load-balanced (2) path.
  static constexpr int kDirectHops = 1;
  static constexpr int kBalancedHops = 2;

  // Analytic degraded-mesh bound: with `failed` of `n` nodes down under a
  // uniform all-to-all traffic matrix, the fraction of total offered load
  // that is still deliverable — alive inputs ((n-f)/n) times the fraction
  // of their traffic addressed to alive outputs ((n-f)/n). The VLB mesh
  // meets this bound as long as the survivors have the 2R-3R headroom of
  // §3.2; the failover bench checks the DES settles here rather than
  // collapsing.
  static double DegradedUniformDeliveredFraction(uint16_t n, uint16_t failed);

 private:
  uint16_t n_;
};

// k-ary n-fly: k^n terminal ports on each side, n stages of k^(n-1)
// k-by-k switch nodes. Node ids: stage s in [0, n), index i in
// [0, k^(n-1)).
class KAryNFlyTopology {
 public:
  KAryNFlyTopology(uint32_t k, uint32_t n);

  uint32_t k() const { return k_; }
  uint32_t n() const { return n_; }
  uint64_t num_terminals() const;        // k^n
  uint64_t switches_per_stage() const;   // k^(n-1)
  uint64_t total_switches() const;       // n * k^(n-1)

  // The switch visited at stage `stage` on the (unique) path from input
  // terminal `src` to output terminal `dst` in a destination-routed
  // butterfly.
  uint64_t SwitchOnPath(uint64_t src, uint64_t dst, uint32_t stage) const;

  // Path length in switch hops (== n for every pair).
  uint32_t PathHops() const { return n_; }

 private:
  uint32_t k_;
  uint32_t n_;
};

}  // namespace rb

#endif  // RB_CLUSTER_TOPOLOGY_HPP_
