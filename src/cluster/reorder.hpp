// Reordering measurement (§6.2).
//
// The paper counts the fraction of same-flow packet sequences delivered
// out of order within their TCP/UDP flow. We track, per flow, the highest
// per-flow sequence number delivered so far: a delivered packet with a
// lower sequence number than the maximum already delivered is a
// reordered packet, and each contiguous run of such packets counts as one
// reordered sequence (matching the paper's example: <p1,p4,p2,p3,p5>
// counts one reordered sequence).
#ifndef RB_CLUSTER_REORDER_HPP_
#define RB_CLUSTER_REORDER_HPP_

#include <cstdint>
#include <unordered_map>

namespace rb {

class ReorderDetector {
 public:
  // Records a delivery. Deliveries must be reported in delivery order
  // (per flow).
  void Deliver(uint64_t flow_id, uint64_t flow_seq);

  uint64_t total_packets() const { return total_; }
  uint64_t reordered_packets() const { return reordered_packets_; }
  uint64_t reordered_sequences() const { return reordered_sequences_; }
  // Re-deliveries of a flow's newest sequence number; tracked separately
  // so duplicates do not inflate the reordering fractions.
  uint64_t duplicate_packets() const { return duplicate_packets_; }
  uint64_t flows() const { return flows_.size(); }

  // Fraction of reordered sequences over delivered packets (the paper's
  // metric normalizes per sequence).
  double SequenceFraction() const {
    return total_ ? static_cast<double>(reordered_sequences_) / static_cast<double>(total_) : 0.0;
  }
  double PacketFraction() const {
    return total_ ? static_cast<double>(reordered_packets_) / static_cast<double>(total_) : 0.0;
  }

 private:
  struct FlowState {
    uint64_t max_seq = 0;
    bool any = false;
    bool in_reordered_run = false;
  };

  std::unordered_map<uint64_t, FlowState> flows_;
  uint64_t total_ = 0;
  uint64_t reordered_packets_ = 0;
  uint64_t reordered_sequences_ = 0;
  uint64_t duplicate_packets_ = 0;
};

}  // namespace rb

#endif  // RB_CLUSTER_REORDER_HPP_
