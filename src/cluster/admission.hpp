// Fair ingress admission under overload (the paper's §3 overload story):
// when an ingress server's offered load exceeds the rate it can actually
// deliver into the VLB mesh (believed capacity, shrunk by failures), the
// excess must be dropped *at the ingress VLB stage, fairly per output
// port* — not wherever an internal queue happens to overflow first, which
// would let one output's overload steal goodput from the others.
//
// The dropper is a deficit-round-robin allocator over output ports with a
// time-based quantum refill: every live output port earns
// capacity/live_ports bytes of deficit per second (capped at a small
// burst), and a packet for port j is admitted iff j's deficit covers it.
// Ports whose demand stays under their share never hit the deficit floor;
// ports over their share are clipped to it, so per-port goodput converges
// to min(demand, fair share). Unused share of an under-loaded port is not
// redistributed (non-work-conserving) — acceptable at the bench's
// operating point where every port is overloaded, and strictly fair.
//
// Engagement is hysteretic so the allocator stays out of the way at
// normal load: it engages when the offered-rate estimate exceeds believed
// capacity (windowed byte-rate estimator) OR the monitored ingress queue
// depth passes engage_depth, and releases only when both signals clear.
// Destinations believed dead (HealthView) are dropped at ingress
// regardless — VLB would only burn mesh capacity carrying them inward.
#ifndef RB_CLUSTER_ADMISSION_HPP_
#define RB_CLUSTER_ADMISSION_HPP_

#include <cstdint>
#include <vector>

#include "cluster/failure.hpp"
#include "common/time.hpp"

namespace rb {

struct AdmissionConfig {
  bool enabled = false;
  double capacity_bps = 10e9;  // believed deliverable ingress rate
  uint32_t quantum_bytes = 1514;
  double burst_quanta = 8.0;  // per-port deficit cap, in quanta
  double rate_tau_s = 1e-3;   // offered-rate estimator window
  size_t engage_depth = 512;  // monitored queue depth forcing engagement
  size_t release_depth = 128;
  double engage_margin = 1.0;   // engage when offered > capacity * this
  double release_margin = 0.9;  // release when offered < capacity * this
};

// Operator override for the hysteretic engagement logic (control-socket
// write handler): kAuto follows the rate/depth signals, kOn pins the
// allocator engaged, kOff pins it released (dead-destination drops still
// apply — they are a correctness rule, not an overload response).
enum class AdmissionForce : uint8_t { kAuto, kOn, kOff };

class AdmissionDrr {
 public:
  AdmissionDrr(const AdmissionConfig& config, uint16_t num_ports);

  // Believed liveness source for dead-destination drops and the live-port
  // count in the fair share; nullptr = all ports believed alive.
  void set_health(const HealthView* health) { health_ = health; }

  // Verdict for one packet of `bytes` headed to output port `dst` at time
  // `now`; `monitored_depth` is the ingress queue depth backing the
  // depth-based engagement signal. False = drop at ingress (the caller
  // accounts it in the `admission` drop bucket).
  bool Admit(uint16_t dst, uint32_t bytes, SimTime now, size_t monitored_depth);

  bool engaged() const { return engaged_; }
  AdmissionForce force() const { return force_; }
  void set_force(AdmissionForce f) { force_ = f; }
  double offered_bps() const { return rate_bps_; }
  uint16_t num_ports() const { return static_cast<uint16_t>(deficit_.size()); }

  uint64_t offered_packets() const { return offered_packets_; }
  uint64_t admitted_packets() const { return admitted_packets_; }
  uint64_t dropped_packets() const { return dropped_packets_; }  // deficit drops
  uint64_t dropped_dead() const { return dropped_dead_; }
  uint64_t engage_events() const { return engage_events_; }
  uint64_t admitted_bytes(uint16_t port) const { return admitted_bytes_[port]; }
  uint64_t dropped_bytes(uint16_t port) const { return dropped_bytes_[port]; }

 private:
  bool PortAlive(uint16_t port) const;
  void UpdateRate(uint32_t bytes, SimTime now);
  void UpdateEngagement(size_t depth, SimTime now);
  void Engage(SimTime now);  // fresh episode: reset deficits, stamp refill
  void Refill(SimTime now);

  AdmissionConfig cfg_;
  const HealthView* health_ = nullptr;
  std::vector<double> deficit_;  // bytes of credit per output port

  bool engaged_ = false;
  AdmissionForce force_ = AdmissionForce::kAuto;
  SimTime last_refill_ = 0;

  // Windowed offered-rate estimator: accumulate bytes for rate_tau_s,
  // then publish bytes*8/elapsed. Deterministic and branch-cheap.
  double rate_bps_ = 0;
  SimTime window_start_ = 0;
  uint64_t window_bytes_ = 0;

  uint64_t offered_packets_ = 0;
  uint64_t admitted_packets_ = 0;
  uint64_t dropped_packets_ = 0;
  uint64_t dropped_dead_ = 0;
  uint64_t engage_events_ = 0;
  std::vector<uint64_t> admitted_bytes_;
  std::vector<uint64_t> dropped_bytes_;
};

}  // namespace rb

#endif  // RB_CLUSTER_ADMISSION_HPP_
