#include "cluster/vlb.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rb {

DirectVlbRouter::DirectVlbRouter(const VlbConfig& config, uint16_t self)
    : config_(config),
      self_(self),
      flowlets_(config.flowlet_delta),
      rng_(config.seed ^ (0x9e37ULL * (self + 1))),
      direct_rate_(config.num_nodes),
      via_rate_(config.num_nodes) {
  RB_CHECK(config.num_nodes >= 2);
  RB_CHECK(self < config.num_nodes);
}

void DirectVlbRouter::Charge(PathRate* pr, uint32_t bytes, SimTime now) const {
  double decay = std::exp(-(now - pr->last) / config_.rate_tau);
  pr->rate = pr->rate * decay + static_cast<double>(bytes) * 8.0 / config_.rate_tau;
  pr->last = now;
}

double DirectVlbRouter::Read(const PathRate& pr, SimTime now) const {
  return pr.rate * std::exp(-(now - pr.last) / config_.rate_tau);
}

double DirectVlbRouter::EstimatedRate(uint16_t dst, uint16_t via, SimTime now) const {
  if (via == FlowletPath::kDirect) {
    return Read(direct_rate_[dst], now);
  }
  return Read(via_rate_[via], now);
}

uint16_t DirectVlbRouter::PickIntermediate(uint16_t dst, Rng* rng) {
  // Uniform over nodes other than self and dst (those two would not be
  // load-balancing). num_nodes >= 3 is required to balance at all; in a
  // 2-node cluster everything is direct.
  uint16_t n = config_.num_nodes;
  if (n <= 2) {
    return dst;
  }
  while (true) {
    uint16_t v = static_cast<uint16_t>(rng->NextBounded(n));
    if (v != self_ && v != dst) {
      return v;
    }
  }
}

VlbDecision DirectVlbRouter::Route(uint16_t dst, uint64_t flow_id, uint32_t bytes, SimTime now) {
  RB_CHECK(dst < config_.num_nodes);
  const double direct_budget =
      config_.port_rate_bps / config_.num_nodes * 1.0;  // R/N (Direct VLB rule)
  const double link_budget = config_.internal_link_bps * config_.overload_threshold;

  VlbDecision d;

  if (config_.flowlets) {
    flowlets_.Expire(now);
    FlowletPath path = flowlets_.Lookup(flow_id, now);
    if (path.assigned()) {
      if (path.direct()) {
        // A flowlet assigned to the direct path stays there: revoking it
        // mid-flowlet is exactly the path flap the scheme exists to
        // prevent. The R/N budget is enforced where it matters — when NEW
        // flowlets are assigned — and the EWMA charge here is what that
        // admission check reads.
        Charge(&direct_rate_[dst], bytes, now);
        flowlets_.Commit(flow_id, now, path);
        direct_packets_++;
        d.direct = true;
        return d;
      }
      if (Read(via_rate_[path.via], now) <= link_budget) {
        Charge(&via_rate_[path.via], bytes, now);
        flowlets_.Commit(flow_id, now, path);
        balanced_packets_++;
        d.via = path.via;
        return d;
      }
      // The flowlet's path is overloaded: spill to per-packet balancing
      // (classic VLB) for this packet; the flowlet keeps its assignment
      // so later packets retry it.
      spilled_++;
      d.spilled = true;
      d.via = PickIntermediate(dst, &rng_);
      Charge(&via_rate_[d.via], bytes, now);
      balanced_packets_++;
      return d;
    }
  }

  // Fresh decision: direct when Direct VLB is on and within budget.
  if (config_.direct_vlb && Read(direct_rate_[dst], now) < direct_budget) {
    Charge(&direct_rate_[dst], bytes, now);
    if (config_.flowlets) {
      flowlets_.Commit(flow_id, now, FlowletPath{FlowletPath::kDirect});
    }
    direct_packets_++;
    d.direct = true;
    return d;
  }

  d.via = PickIntermediate(dst, &rng_);
  Charge(&via_rate_[d.via], bytes, now);
  if (config_.flowlets) {
    flowlets_.Commit(flow_id, now, FlowletPath{d.via});
  }
  balanced_packets_++;
  return d;
}

}  // namespace rb
