#include "cluster/vlb.hpp"

#include <cmath>

#include "common/log.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"

namespace rb {

DirectVlbRouter::DirectVlbRouter(const VlbConfig& config, uint16_t self)
    : config_(config),
      self_(self),
      flowlets_(config.flowlet_delta),
      rng_(config.seed ^ (0x9e37ULL * (self + 1))),
      direct_rate_(config.num_nodes),
      via_rate_(config.num_nodes) {
  RB_CHECK(config.num_nodes >= 2);
  RB_CHECK(self < config.num_nodes);
}

void DirectVlbRouter::Charge(PathRate* pr, uint32_t bytes, SimTime now) const {
  double decay = std::exp(-(now - pr->last) / config_.rate_tau);
  pr->rate = pr->rate * decay + static_cast<double>(bytes) * 8.0 / config_.rate_tau;
  pr->last = now;
}

double DirectVlbRouter::Read(const PathRate& pr, SimTime now) const {
  return pr.rate * std::exp(-(now - pr.last) / config_.rate_tau);
}

double DirectVlbRouter::EstimatedRate(uint16_t dst, uint16_t via, SimTime now) const {
  if (via == FlowletPath::kDirect) {
    return Read(direct_rate_[dst], now);
  }
  return Read(via_rate_[via], now);
}

bool DirectVlbRouter::NodeUp(uint16_t node) const {
  return health_ == nullptr || health_->NodeAlive(node);
}

bool DirectVlbRouter::LinkOk(uint16_t from, uint16_t to) const {
  return health_ == nullptr || health_->LinkUp(from, to);
}

bool DirectVlbRouter::PathHealthy(const FlowletPath& path, uint16_t dst) const {
  if (health_ == nullptr) {
    return true;
  }
  if (path.direct()) {
    return LinkOk(self_, dst);
  }
  return LinkOk(self_, path.via) && LinkOk(path.via, dst);
}

size_t DirectVlbRouter::OnNodeUnhealthy(uint16_t node) {
  // Flowlets balanced via the node, plus every flowlet (direct or via)
  // destined to it.
  size_t erased = flowlets_.Invalidate(node, FlowletTable::kAny);
  erased += flowlets_.Invalidate(FlowletTable::kAny, node);
  invalidated_ += erased;
  return erased;
}

size_t DirectVlbRouter::OnLinkUnhealthy(uint16_t from, uint16_t to) {
  size_t erased = 0;
  if (from == self_) {
    // First-hop edge: direct flowlets to `to`, and via-flowlets whose
    // intermediate is `to`.
    erased += flowlets_.Invalidate(FlowletPath::kDirect, to);
    erased += flowlets_.Invalidate(to, FlowletTable::kAny);
  } else {
    // Second-hop edge from -> to: via-flowlets through `from` destined to
    // `to`.
    erased += flowlets_.Invalidate(from, to);
  }
  invalidated_ += erased;
  return erased;
}

uint16_t DirectVlbRouter::PickIntermediate(uint16_t dst, Rng* rng) {
  // Uniform over nodes other than self and dst (those two would not be
  // load-balancing) that are believed alive with both hops of the two-hop
  // path self -> v -> dst believed up. In a ≤2-node cluster, or when every
  // candidate is believed unreachable, there is nothing to balance
  // through: kNoVia, and the caller takes the direct link.
  uint16_t n = config_.num_nodes;
  pick_scratch_.clear();
  for (uint16_t v = 0; v < n; ++v) {
    if (v == self_ || v == dst) {
      continue;
    }
    if (!NodeUp(v) || !LinkOk(self_, v) || !LinkOk(v, dst)) {
      continue;
    }
    pick_scratch_.push_back(v);
  }
  if (pick_scratch_.empty()) {
    return kNoVia;
  }
  return pick_scratch_[rng->NextBounded(pick_scratch_.size())];
}

VlbDecision DirectVlbRouter::TakeDirect(uint16_t dst, uint64_t flow_id, uint32_t bytes,
                                        SimTime now) {
  Charge(&direct_rate_[dst], bytes, now);
  if (config_.flowlets) {
    flowlets_.Commit(flow_id, now, FlowletPath{FlowletPath::kDirect}, dst);
  }
  direct_packets_++;
  VlbDecision d;
  d.direct = true;
  return d;
}

VlbDecision DirectVlbRouter::Route(uint16_t dst, uint64_t flow_id, uint32_t bytes, SimTime now) {
  RB_CHECK(dst < config_.num_nodes);
  const double direct_budget =
      config_.port_rate_bps / config_.num_nodes * 1.0;  // R/N (Direct VLB rule)
  const double link_budget = config_.internal_link_bps * config_.overload_threshold;

  // A destination believed dead has no deliverable path at all: send
  // direct rather than burn an intermediate's capacity on a doomed packet.
  // (Checked before the flowlet logic so such flows do not churn the
  // re-pin counters every packet.)
  if (!NodeUp(dst)) {
    return TakeDirect(dst, flow_id, bytes, now);
  }
  const bool direct_link_ok = LinkOk(self_, dst);

  VlbDecision d;

  if (config_.flowlets) {
    flowlets_.Expire(now);
    FlowletPath path = flowlets_.Lookup(flow_id, now);
    if (path.assigned() && !PathHealthy(path, dst)) {
      // The pinned path died: re-pin now via a fresh decision below
      // (which Commits the replacement) instead of blackholing until δ
      // expires.
      repins_++;
      path = FlowletPath{};
    }
    if (path.assigned()) {
      if (path.direct()) {
        // A flowlet assigned to the direct path stays there: revoking it
        // mid-flowlet is exactly the path flap the scheme exists to
        // prevent. The R/N budget is enforced where it matters — when NEW
        // flowlets are assigned — and the EWMA charge here is what that
        // admission check reads.
        Charge(&direct_rate_[dst], bytes, now);
        flowlets_.Commit(flow_id, now, path, dst);
        direct_packets_++;
        d.direct = true;
        return d;
      }
      if (Read(via_rate_[path.via], now) <= link_budget) {
        Charge(&via_rate_[path.via], bytes, now);
        flowlets_.Commit(flow_id, now, path, dst);
        balanced_packets_++;
        d.via = path.via;
        return d;
      }
      // The flowlet's path is overloaded: spill to per-packet balancing
      // (classic VLB) for this packet; the flowlet keeps its assignment
      // so later packets retry it.
      uint16_t via = PickIntermediate(dst, &rng_);
      if (via != kNoVia) {
        spilled_++;
        d.spilled = true;
        d.via = via;
        Charge(&via_rate_[d.via], bytes, now);
        balanced_packets_++;
        return d;
      }
      // No alternative intermediate: stay on the (overloaded but healthy)
      // assigned path.
      Charge(&via_rate_[path.via], bytes, now);
      flowlets_.Commit(flow_id, now, path, dst);
      balanced_packets_++;
      d.via = path.via;
      return d;
    }
  }

  // Fresh decision: direct when Direct VLB is on, the direct link is
  // believed up, and the R/N budget has room.
  if (config_.direct_vlb && direct_link_ok && Read(direct_rate_[dst], now) < direct_budget) {
    return TakeDirect(dst, flow_id, bytes, now);
  }

  d.via = PickIntermediate(dst, &rng_);
  if (d.via == kNoVia) {
    // Nothing to balance through (≤2 nodes, or every intermediate is
    // believed dead): the direct link is the only path. Classified and
    // charged as direct — it traverses the direct link.
    return TakeDirect(dst, flow_id, bytes, now);
  }
  if (config_.direct_vlb && !direct_link_ok) {
    // Direct was the preferred path but its link is believed down:
    // failure-driven fallback to via-routing.
    failover_reroutes_++;
    // Interned once: failovers repeat per-packet for the whole outage.
    static const telemetry::ScopeId kVlbScope = telemetry::InternScopeName("vlb");
    telemetry::FrRecord(telemetry::FrEvent::kFailover, kVlbScope,
                        (static_cast<uint64_t>(self_) << 16) | dst, d.via);
  }
  Charge(&via_rate_[d.via], bytes, now);
  if (config_.flowlets) {
    flowlets_.Commit(flow_id, now, FlowletPath{d.via}, dst);
  }
  balanced_packets_++;
  return d;
}

}  // namespace rb
