#include "cluster/topology.hpp"

#include "common/log.hpp"

namespace rb {

FullMeshTopology::FullMeshTopology(uint16_t num_nodes) : n_(num_nodes) {
  RB_CHECK(num_nodes >= 2);
}

double FullMeshTopology::DegradedUniformDeliveredFraction(uint16_t n, uint16_t failed) {
  RB_CHECK(n >= 1 && failed <= n);
  double alive = static_cast<double>(n - failed) / static_cast<double>(n);
  return alive * alive;
}

KAryNFlyTopology::KAryNFlyTopology(uint32_t k, uint32_t n) : k_(k), n_(n) {
  RB_CHECK(k >= 2);
  RB_CHECK(n >= 1);
}

uint64_t KAryNFlyTopology::num_terminals() const {
  uint64_t t = 1;
  for (uint32_t i = 0; i < n_; ++i) {
    t *= k_;
  }
  return t;
}

uint64_t KAryNFlyTopology::switches_per_stage() const { return num_terminals() / k_; }

uint64_t KAryNFlyTopology::total_switches() const { return n_ * switches_per_stage(); }

uint64_t KAryNFlyTopology::SwitchOnPath(uint64_t src, uint64_t dst, uint32_t stage) const {
  RB_CHECK(stage < n_);
  RB_CHECK(src < num_terminals() && dst < num_terminals());
  // Destination-tag routing: entering stage t, the most significant t
  // address digits have already been corrected to the destination's. The
  // switch row is the terminal address with digit t removed.
  // Extract base-k digits, most significant first.
  std::vector<uint32_t> sdig(n_), ddig(n_);
  uint64_t s = src;
  uint64_t d = dst;
  for (uint32_t i = n_; i-- > 0;) {
    sdig[i] = static_cast<uint32_t>(s % k_);
    s /= k_;
    ddig[i] = static_cast<uint32_t>(d % k_);
    d /= k_;
  }
  uint64_t row = 0;
  for (uint32_t j = 0; j < n_; ++j) {
    if (j == stage) {
      continue;  // the digit being corrected at this stage indexes the
                 // switch's internal port, not its row
    }
    uint32_t digit = j < stage ? ddig[j] : sdig[j];
    row = row * k_ + digit;
  }
  return row;
}

}  // namespace rb
