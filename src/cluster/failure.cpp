#include "cluster/failure.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace rb {

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNodeDown:
      return "node-down";
    case FailureKind::kNodeUp:
      return "node-up";
    case FailureKind::kLinkDown:
      return "link-down";
    case FailureKind::kLinkUp:
      return "link-up";
  }
  return "?";
}

FailureSchedule& FailureSchedule::Add(const FailureEvent& ev) {
  RB_CHECK_MSG(ev.time >= 0, "failure events need non-negative times");
  if (!events_.empty() && ev.time < events_.back().time) {
    sorted_ = false;
  }
  events_.push_back(ev);
  return *this;
}

FailureSchedule& FailureSchedule::NodeDown(uint16_t node, SimTime t) {
  return Add(FailureEvent{t, FailureKind::kNodeDown, node, 0});
}

FailureSchedule& FailureSchedule::NodeUp(uint16_t node, SimTime t) {
  return Add(FailureEvent{t, FailureKind::kNodeUp, node, 0});
}

FailureSchedule& FailureSchedule::LinkDown(uint16_t from, uint16_t to, SimTime t) {
  return Add(FailureEvent{t, FailureKind::kLinkDown, from, to});
}

FailureSchedule& FailureSchedule::LinkUp(uint16_t from, uint16_t to, SimTime t) {
  return Add(FailureEvent{t, FailureKind::kLinkUp, from, to});
}

const std::vector<FailureEvent>& FailureSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });
    sorted_ = true;
  }
  return events_;
}

namespace {

bool ParseEntry(const std::string& entry, FailureEvent* ev) {
  std::vector<std::string> parts = Split(entry, ':');
  if (parts.size() != 3) {
    return false;
  }
  char* end = nullptr;
  ev->time = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str() || *end != '\0' || ev->time < 0) {
    return false;
  }
  const std::string& kind = parts[1];
  bool link = kind == "link-down" || kind == "link-up";
  if (kind == "node-down") {
    ev->kind = FailureKind::kNodeDown;
  } else if (kind == "node-up") {
    ev->kind = FailureKind::kNodeUp;
  } else if (kind == "link-down") {
    ev->kind = FailureKind::kLinkDown;
  } else if (kind == "link-up") {
    ev->kind = FailureKind::kLinkUp;
  } else {
    return false;
  }
  if (link) {
    std::vector<std::string> ends = Split(parts[2], '-');
    if (ends.size() != 2) {
      return false;
    }
    ev->node = static_cast<uint16_t>(std::strtoul(ends[0].c_str(), &end, 10));
    if (end == ends[0].c_str() || *end != '\0') {
      return false;
    }
    ev->peer = static_cast<uint16_t>(std::strtoul(ends[1].c_str(), &end, 10));
    if (end == ends[1].c_str() || *end != '\0' || ev->node == ev->peer) {
      return false;
    }
  } else {
    ev->node = static_cast<uint16_t>(std::strtoul(parts[2].c_str(), &end, 10));
    if (end == parts[2].c_str() || *end != '\0') {
      return false;
    }
    ev->peer = 0;
  }
  return true;
}

}  // namespace

bool FailureSchedule::Parse(const std::string& spec, FailureSchedule* out) {
  FailureSchedule parsed;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string& raw : Split(normalized, ',')) {
    std::string entry = Trim(raw);
    if (entry.empty()) {
      continue;
    }
    FailureEvent ev;
    if (!ParseEntry(entry, &ev)) {
      return false;
    }
    parsed.Add(ev);
  }
  *out = std::move(parsed);
  return true;
}

FailureSchedule FailureSchedule::RandomNodeFailures(uint16_t num_nodes, SimTime mtbf, SimTime mttr,
                                                    SimTime horizon, uint64_t seed) {
  RB_CHECK(mtbf > 0 && mttr > 0 && horizon > 0);
  FailureSchedule sched;
  for (uint16_t node = 0; node < num_nodes; ++node) {
    // Per-node generator so adding nodes does not perturb earlier nodes'
    // draws.
    Rng rng(seed ^ (0xf00dULL + node * 0x9e3779b97f4a7c15ULL));
    SimTime t = 0;
    while (true) {
      t += rng.NextExponential(mtbf);
      if (t >= horizon) {
        break;
      }
      sched.NodeDown(node, t);
      t += rng.NextExponential(mttr);
      if (t >= horizon) {
        break;  // stays down past the horizon
      }
      sched.NodeUp(node, t);
    }
  }
  return sched;
}

HealthView::HealthView(uint16_t num_nodes) : n_(num_nodes) {
  RB_CHECK(num_nodes >= 1);
  node_alive_.assign(n_, 1);
  link_up_.assign(static_cast<size_t>(n_) * n_, 1);
}

void HealthView::SetNodeAlive(uint16_t node, bool alive) {
  RB_CHECK(node < n_);
  uint8_t v = alive ? 1 : 0;
  if (node_alive_[node] != v) {
    node_alive_[node] = v;
    version_++;
  }
}

void HealthView::SetLinkUp(uint16_t from, uint16_t to, bool up) {
  RB_CHECK(from < n_ && to < n_);
  uint8_t v = up ? 1 : 0;
  uint8_t& slot = link_up_[static_cast<size_t>(from) * n_ + to];
  if (slot != v) {
    slot = v;
    version_++;
  }
}

bool HealthView::NodeAlive(uint16_t node) const {
  RB_CHECK(node < n_);
  return node_alive_[node] != 0;
}

bool HealthView::LinkUp(uint16_t from, uint16_t to) const {
  RB_CHECK(from < n_ && to < n_);
  // A link to or from a dead node is unusable regardless of the edge's own
  // state.
  if (node_alive_[from] == 0 || node_alive_[to] == 0) {
    return false;
  }
  return link_up_[static_cast<size_t>(from) * n_ + to] != 0;
}

uint16_t HealthView::alive_nodes() const {
  uint16_t alive = 0;
  for (uint8_t a : node_alive_) {
    alive = static_cast<uint16_t>(alive + (a != 0 ? 1 : 0));
  }
  return alive;
}

}  // namespace rb
