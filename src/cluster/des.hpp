// The cluster simulator: an N-node full-mesh Direct-VLB router (§3, §6)
// as an event-driven network of FIFO rate servers.
//
// A packet entering at node S and leaving at node D traverses:
//   ext-rx NIC(S) -> CPU(S) [IP routing + VLB decision + flowlet
//   bookkeeping] -> { direct: tx NIC(S->D), link(S,D), rx NIC(D)
//                   | via V: ... -> CPU(V) [minimal fwd] -> ... -> D }
//   -> CPU(D) [minimal fwd] -> ext-out port(D).
// Each node visit also adds the fixed per-server latency of §6.2 (DMA
// transfers + NIC-driven batching wait). NIC rx/tx servers are shared per
// NIC direction, modeling the per-NIC PCIe ceiling (§4.1) that limits RB4
// to ~35 Gbps on the Abilene workload.
//
// Events (arrivals and service completions) are processed in global time
// order, so FIFO ordering, queueing, loss and reordering are exact.
#ifndef RB_CLUSTER_DES_HPP_
#define RB_CLUSTER_DES_HPP_

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/failure.hpp"
#include "flow/stateful_plane.hpp"
#include "cluster/node.hpp"
#include "cluster/reorder.hpp"
#include "common/stats.hpp"
#include "model/app_profile.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "workload/flows.hpp"
#include "workload/traffic_matrix.hpp"
#include "workload/workload.hpp"

namespace rb {

struct ClusterConfig {
  uint16_t num_nodes = 4;
  double ext_rate_bps = 10e9;        // external line rate R
  double internal_link_bps = 10e9;
  double node_cycles_per_sec = 8 * 2.8e9;

  // Per-packet CPU costs by role. Defaults are taken from the model's
  // calibrated application profiles (set in ClusterConfig::Rb4()).
  LoadCurve ingress_cycles;          // IP routing at the input node
  LoadCurve transit_cycles;          // minimal forwarding elsewhere
  // Reordering-avoidance bookkeeping at the input node (per-flow counters,
  // arrival times, link-utilization tracking — §6.2 explains RB4's
  // shortfall from its 12.7 Gbps lower expectation by exactly this
  // overhead). Calibrated so the simulated RB4 lands at the measured
  // ~12 Gbps 64 B operating point.
  double reorder_avoidance_cycles = 1000;

  VlbConfig vlb;                      // direct VLB + flowlet parameters

  // NIC modeling (per-direction PCIe ceiling shared by a NIC's ports).
  bool model_nics = true;
  double per_nic_bps = 12.3e9;
  int ports_per_nic = 2;

  // Fixed per-node latency: 4 DMA transfers + NIC-batching wait (§6.2,
  // 24 us per server minus the ~0.8 us of processing the CPU server adds).
  SimTime node_fixed_latency = 23.2e-6;
  SimTime link_propagation = 1e-6;

  // Bounded queues (packets) — define the loss-free envelope. NIC/link
  // queues reflect descriptor-ring depths; the CPU queue reflects the
  // socket-buffer pool.
  size_t cpu_queue_pkts = 8192;
  size_t nic_queue_pkts = 1024;
  size_t link_queue_pkts = 1024;
  size_t ext_out_queue_pkts = 1024;

  // Idealized output re-sequencer (§6.1's rejected alternative, built as
  // an extension): holds out-of-order deliveries until their flow
  // predecessors have left, or until the timeout expires (loss fills the
  // hole).
  bool resequence = false;
  SimTime resequence_timeout = 1e-3;

  uint64_t seed = 2024;

  // Failure injection: scripted node/link down/up events applied at their
  // scheduled (ground-truth) times. Routing reacts only once the failure
  // detector fires, `failure_detection_delay` later (the heartbeat
  // timeout: interval x missed-beat threshold); until then peers keep
  // sending into the failed element and those packets are blackholed.
  FailureSchedule failures;
  SimTime failure_detection_delay = 200e-6;

  // Fair ingress admission (admission.hpp): when enabled, every external
  // packet passes the input node's deficit-round-robin allocator between
  // the ext-rx NIC and the ingress CPU; rejects land in the `admission`
  // drop bucket. capacity_bps should be the believed per-ingress
  // deliverable rate (≈ ext_rate_bps for a healthy cluster).
  AdmissionConfig admission;

  // With a window > 0, Finish() returns a per-window timeline of offered /
  // delivered / dropped packets and latency (bucketed by event time) — the
  // before/during/after view the failover bench plots.
  SimTime timeline_window = 0;

  // Stateful-NF plane (DESIGN.md §17): when enabled, every packet runs a
  // per-flow state update (distributed NAT) at its ingress CPU stage,
  // homed by flow id across the nodes. `stateful.mode` selects the
  // shared-state baseline (node failure loses the shard) or SCR
  // (replay-on-failover preserves established-flow mappings).
  StatefulPlaneConfig stateful;

  // The paper's prototype: 4 Nehalem nodes, full mesh, Direct VLB with
  // flowlets, calibrated application costs.
  static ClusterConfig Rb4();
};

struct ClusterDrops {
  uint64_t ext_rx_nic = 0;
  uint64_t cpu = 0;
  uint64_t tx_nic = 0;
  uint64_t link = 0;
  uint64_t rx_nic = 0;
  uint64_t ext_out = 0;
  // Failure taxonomy: blackholed by a down node (arrivals at, queued in,
  // or in service at any of its servers) / by a disabled directed link.
  uint64_t failed_node = 0;
  uint64_t failed_link = 0;
  // Rejected by fair ingress admission (AdmissionDrr) — overload shed at
  // the VLB input stage instead of inside the mesh.
  uint64_t admission = 0;

  uint64_t total() const {
    return ext_rx_nic + cpu + tx_nic + link + rx_nic + ext_out + failed_node + failed_link +
           admission;
  }
  uint64_t failed() const { return failed_node + failed_link; }
};

// One timeline_window's worth of activity (ClusterConfig::timeline_window).
struct TimelineBucket {
  uint64_t offered = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;         // all causes, including failures
  uint64_t failed_dropped = 0;  // failure-taxonomy subset of dropped
  double latency_sum = 0;       // seconds, over delivered

  double mean_latency() const {
    return delivered ? latency_sum / static_cast<double>(delivered) : 0;
  }
  double loss_fraction() const {
    return offered ? static_cast<double>(offered - std::min(offered, delivered)) /
                         static_cast<double>(offered)
                   : 0;
  }
};

// An applied failure event with its ground-truth and detection times.
struct FailureLogEntry {
  FailureEvent event;
  SimTime applied = 0;
  SimTime detected = 0;
};

struct ClusterRunStats {
  uint64_t offered_packets = 0;
  uint64_t offered_bytes = 0;
  uint64_t delivered_packets = 0;
  uint64_t delivered_bytes = 0;
  ClusterDrops drops;
  double duration = 0;  // simulated seconds of injected traffic

  double offered_bps() const {
    return duration > 0 ? static_cast<double>(offered_bytes) * 8.0 / duration : 0;
  }
  double delivered_bps() const {
    return duration > 0 ? static_cast<double>(delivered_bytes) * 8.0 / duration : 0;
  }
  double loss_fraction() const {
    return offered_packets ? 1.0 - static_cast<double>(delivered_packets) /
                                       static_cast<double>(offered_packets)
                           : 0;
  }

  std::vector<double> per_output_bps;
  std::vector<double> per_input_delivered_bps;  // by source node (fairness)
  Histogram latency{0, 500e-6, 250};
  double reorder_sequence_fraction = 0;
  double reorder_packet_fraction = 0;
  uint64_t direct_packets = 0;
  uint64_t balanced_packets = 0;
  double resequencer_added_delay_mean = 0;
  uint64_t resequencer_timeouts = 0;

  // Failure-injection outcomes (zero when no schedule was configured).
  uint64_t failure_events_applied = 0;
  uint64_t failover_reroutes = 0;      // direct-preferring decisions pushed to via
  uint64_t flowlet_repins = 0;         // flowlets re-pinned off a dead path
  uint64_t flowlets_invalidated = 0;   // flowlets erased at detection time
  std::vector<FailureLogEntry> failure_log;
  std::vector<TimelineBucket> timeline;  // empty unless timeline_window > 0

  // Stateful-plane outcome (zero-valued unless config.stateful.enabled).
  StatefulPlaneStats stateful;
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& config);

  // Injects one external packet at simulated time t. Times must be
  // non-decreasing across calls.
  void Inject(uint16_t src, uint16_t dst, uint64_t flow_id, uint64_t flow_seq, uint32_t bytes,
              SimTime t);

  // Drains all outstanding events and finalizes statistics. `duration` is
  // the denominator for rate computations (injected-traffic horizon).
  ClusterRunStats Finish(SimTime duration);

  // Drives the cluster with Poisson arrivals at `per_input_bps` offered
  // per external port, destinations drawn from `tm`, sizes from `sizes`,
  // for `duration` simulated seconds. `flows_per_pair` distinct flows per
  // (src, dst) pair. Calls Finish internally.
  ClusterRunStats RunUniform(const TrafficMatrix& tm, double per_input_bps,
                             SizeDistribution* sizes, SimTime duration,
                             uint32_t flows_per_pair = 512);

  // Replays a flow-structured trace between one input and one output pair
  // (the §6.2 reordering experiment). Calls Finish internally.
  ClusterRunStats RunSinglePairTrace(FlowTrafficGenerator* gen, uint16_t src, uint16_t dst,
                                     SimTime duration);

  const ClusterConfig& config() const { return config_; }
  NodeStats node_stats(uint16_t i) const;

  // Believed liveness as of the last processed event (transitions lag
  // ground truth by failure_detection_delay).
  const HealthView& health() const { return health_; }
  // Running drop taxonomy; usable mid-run (tests snapshot it between
  // Inject calls to pin down when blackholing stops).
  const ClusterDrops& current_drops() const { return stats_.drops; }
  // Mid-run conservation accessors (rb_chaos checks after every window):
  // offered == delivered + drops.total() + in_flight at any event
  // boundary.
  uint64_t current_offered() const { return stats_.offered_packets; }
  uint64_t current_delivered() const { return stats_.delivered_packets; }
  size_t in_flight() const { return packets_.size() - free_slots_.size(); }
  // Packets parked inside resequencer hold buffers (a second in-flight
  // population: their DES slots are already released).
  size_t resequencer_held() const;
  // Per-ingress fair-admission state; null when admission is disabled.
  const AdmissionDrr* admission(uint16_t node) const {
    return admission_.empty() ? nullptr : admission_[node].get();
  }
  // Applied failure events so far, with apply/detect timestamps.
  const std::vector<FailureLogEntry>& failure_log() const { return failure_log_; }
  // Stateful plane, or null when config.stateful.enabled is false. Tests
  // snapshot NAT mappings through this (MappingSnapshot) after Finish.
  const StatefulPlane* stateful_plane() const { return stateful_.get(); }

  // Attaches telemetry sinks; call before any Inject. With a registry, the
  // delivery-latency histogram accumulates under "des/latency_s" and the
  // per-node server stats (served, utilization, drops) land in the
  // registry at Finish(). With a tracer, 1-in-N packets record a
  // stage-by-stage trace (simulated-time timestamps: ext-rx -> cpu ->
  // tx-nic -> link -> rx-nic -> ... -> ext-out), Abandon()ed on drop. With
  // probe_interval > 0, CPU and ext-out queue depths are sampled into
  // TimeSeries on the simulated clock. Sinks must outlive the sim; either
  // may be null. No-op while telemetry::Enabled() is false.
  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     SimTime probe_interval = 0);

  // Queue-depth series captured by the simulated-time probe (empty unless
  // BindTelemetry was given a probe interval).
  const std::vector<telemetry::TimeSeries>& probe_series() const { return probe_series_; }

  // Cluster introspection handlers (DESIGN.md §13): reads
  // `cluster.nodes`/`cluster.offered`/`cluster.delivered`/
  // `cluster.in_flight`/`cluster.drops`/`cluster.node_loads`/
  // `cluster.health`, plus `admission.engaged` (per ingress) and
  // read-write `admission.force` (auto/on/off, applied to every ingress)
  // when fair admission is enabled. The DES is single-threaded, so these
  // handlers are for in-process use between events (the driver's
  // inter-window control point), not for a concurrent control thread.
  void AddHandlers(telemetry::HandlerRegistry* handlers);

 private:
  enum class Stage : uint8_t {
    kExtRx,
    kCpuIngress,
    kTxNic,
    kLink,
    kRxNic,
    kCpuTransit,  // intermediate node
    kCpuEgress,   // output node
    kExtOut,
  };

  struct InFlight {
    uint16_t src = 0;
    uint16_t dst = 0;
    uint16_t cur = 0;   // node the packet is at
    uint16_t nxt = 0;   // node the current hop is heading to
    bool direct = true;
    Stage stage = Stage::kExtRx;
    uint32_t bytes = 0;
    uint64_t flow_id = 0;
    uint64_t flow_seq = 0;
    SimTime injected = 0;
    // Queueing wait at the server whose service most recently completed
    // (service start - queue arrival), attached to that stage's trace hop
    // so exported spans decompose into wait vs service.
    SimTime wait = 0;
    uint64_t trace = 0;  // PathTracer handle (0 = unsampled)
    bool active = false;
  };

  struct Event {
    SimTime time = 0;
    enum class Kind : uint8_t { kCompletion, kArrival, kFail, kDetect } kind = Kind::kArrival;
    uint32_t server = 0;       // completion: which server finished
    uint32_t packet_slot = 0;  // arrival: which packet arrives
    uint32_t arrival_server = 0;
    uint32_t fail_index = 0;   // kFail/kDetect: index into failure_log_

    bool operator>(const Event& o) const { return time > o.time; }
  };

  struct HeldPkt {
    SimTime ready = 0;  // when the packet reached the resequencer
    uint16_t src = 0;
    uint16_t dst = 0;
    uint32_t bytes = 0;
    SimTime injected = 0;
  };

  struct FlowReseq {
    uint64_t next_seq = 0;
    std::map<uint64_t, HeldPkt> held;  // seq -> packet
  };

  // --- engine ---
  void AdvanceTo(SimTime t);
  void ProcessEvent(const Event& ev);
  void ArriveAt(uint32_t server_id, uint32_t slot, SimTime now);
  void StartService(uint32_t server_id, SimTime now);
  void OnServiceComplete(uint32_t server_id, SimTime now);
  void ForwardAfter(uint32_t slot, SimTime now);
  void Deliver(uint32_t slot, SimTime now);
  void DropAt(ServerKind kind, uint32_t slot, SimTime now);
  double ServiceSecondsFor(const FifoServer& server, const InFlight& pkt) const;

  // --- failure injection ---
  void ScheduleFailures();
  void ApplyFailure(uint32_t fail_index, SimTime now);
  void ApplyDetection(uint32_t fail_index, SimTime now);
  void SetNodeServersDisabled(uint16_t node, bool disabled, SimTime now);
  void DisableServer(uint32_t server_id, bool disabled, SimTime now);
  // Blackhole drop (failure taxonomy); `link` selects failed_link.
  void DropFailed(uint32_t slot, bool link, SimTime now);
  // Fair-admission reject (admission bucket).
  void DropAdmission(uint32_t slot, SimTime now);
  TimelineBucket* BucketFor(SimTime t);

  // --- telemetry ---
  // Interned hop-point labels, built once at BindTelemetry time so the
  // per-hop trace path never formats a string. Indexed by node (links by
  // from * n + to, drops by kind * n + node).
  struct TraceScopes {
    std::vector<telemetry::ScopeId> inject;
    std::vector<telemetry::ScopeId> stage[8];  // indexed by Stage; kLink unused
    std::vector<telemetry::ScopeId> link;
    std::vector<telemetry::ScopeId> drop;  // ServerKind * n + node
    std::vector<telemetry::ScopeId> drop_node_fail;
    std::vector<telemetry::ScopeId> drop_link_fail;
    std::vector<telemetry::ScopeId> drop_admission;
  };
  void BuildTraceScopes();
  telemetry::ScopeId StageScope(const InFlight& pkt) const;
  void MaybeProbe();
  void ProbeQueues(SimTime t);
  void FinishTelemetry(SimTime duration);

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t slot);

  // --- server registry ---
  uint32_t CpuId(uint16_t node) const;
  uint32_t ExtOutId(uint16_t node) const;
  uint32_t NicRxId(uint16_t node, int nic) const;
  uint32_t NicTxId(uint16_t node, int nic) const;
  uint32_t LinkId(uint16_t from, uint16_t to) const;
  int NicIndexForPort(int port_index) const;
  int NicForPeer(uint16_t node, uint16_t peer) const;
  int num_nics_per_node() const;

  void RecordDelivery(const InFlight& pkt, SimTime delivered);
  void ResequenceDeliver(const InFlight& pkt, SimTime delivered);
  void FlushResequencers();

  ClusterConfig config_;
  std::vector<FifoServer> servers_;
  std::vector<std::unique_ptr<DirectVlbRouter>> vlb_;
  std::vector<std::unique_ptr<AdmissionDrr>> admission_;  // empty = disabled
  std::unique_ptr<StatefulPlane> stateful_;               // null = disabled
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<InFlight> packets_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0;

  // Failure injection: ground-truth node liveness, believed liveness, and
  // the applied-event log (kFail/kDetect events index into it).
  std::vector<uint8_t> node_alive_;
  HealthView health_;
  std::vector<FailureLogEntry> failure_log_;
  std::vector<TimelineBucket> timeline_;

  std::vector<uint64_t> delivered_by_src_;
  std::vector<uint64_t> delivered_by_dst_;
  std::vector<uint64_t> delivered_bytes_by_src_;
  std::vector<uint64_t> delivered_bytes_by_dst_;
  ReorderDetector reorder_;
  std::unordered_map<uint64_t, FlowReseq> reseq_;
  MeanVar reseq_delay_;
  uint64_t reseq_timeouts_ = 0;
  ClusterRunStats stats_;
  bool finished_ = false;

  telemetry::MetricRegistry* tele_registry_ = nullptr;
  telemetry::PathTracer* tele_tracer_ = nullptr;
  telemetry::ShardedHistogram* tele_latency_ = nullptr;
  std::unique_ptr<TraceScopes> trace_scopes_;  // non-null iff tracer bound
  SimTime probe_interval_ = 0;
  SimTime next_probe_ = 0;
  std::vector<telemetry::TimeSeries> probe_series_;
};

// Drop-accounting audit over a finished run: returns "" when every
// offered packet is accounted exactly once across delivered + the drop
// taxonomy (arrivals == delivered + Σ drops), otherwise a human-readable
// description of the imbalance. The satellite invariant every DES
// scenario must satisfy; rb_chaos and the conservation tests call it
// after each run.
std::string AuditConservation(const ClusterRunStats& stats);

}  // namespace rb

#endif  // RB_CLUSTER_DES_HPP_
