#include "cluster/flowlet.hpp"

namespace rb {

FlowletPath FlowletTable::Lookup(uint64_t flow_id, SimTime now) {
  auto it = entries_.find(flow_id);
  if (it == entries_.end() || now - it->second.last_seen > delta_) {
    return FlowletPath{};
  }
  return it->second.path;
}

void FlowletTable::Commit(uint64_t flow_id, SimTime now, FlowletPath path, uint16_t dst) {
  Entry& e = entries_[flow_id];
  e.last_seen = now;
  e.path = path;
  e.dst = dst;
}

size_t FlowletTable::Invalidate(uint16_t via, uint16_t dst) {
  size_t erased = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool via_match = via == kAny || it->second.path.via == via;
    bool dst_match = dst == kAny || it->second.dst == dst;
    if (via_match && dst_match) {
      it = entries_.erase(it);
      erased++;
    } else {
      ++it;
    }
  }
  return erased;
}

void FlowletTable::Expire(SimTime now) {
  // Amortized sweep: at most once per δ.
  if (now - last_expire_ < delta_) {
    return;
  }
  last_expire_ = now;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_seen > delta_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rb
