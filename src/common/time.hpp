// Simulated-time definitions shared by the netdev models and the cluster
// discrete-event simulator.
//
// Simulated time is a double in seconds. At the scales we simulate
// (nanoseconds to seconds) a double retains sub-picosecond resolution, and
// keeping it a plain double makes the arithmetic in rate/latency formulas
// direct. Wall-clock time never drives any experiment result.
#ifndef RB_COMMON_TIME_HPP_
#define RB_COMMON_TIME_HPP_

#include <cstdint>

namespace rb {

using SimTime = double;  // seconds

constexpr SimTime kMicro = 1e-6;
constexpr SimTime kMilli = 1e-3;
constexpr SimTime kNano = 1e-9;

// Ethernet per-frame wire overhead: 7 B preamble + 1 B SFD + 12 B
// inter-frame gap + 4 B FCS. Line-rate math must use frame + 24 bytes.
// (The paper quotes rates in payload terms for 64 B frames, e.g.
// 18.96 Mpps * 64 B * 8 = 9.7 Gbps, i.e. excluding preamble/IFG; we follow
// the paper's convention and expose both.)
constexpr uint32_t kEthernetWireOverhead = 24;
constexpr uint32_t kEthernetFcsBytes = 4;
constexpr uint32_t kMinFrameBytes = 64;
constexpr uint32_t kMaxFrameBytes = 1518;

// Serialization delay of `frame_bytes` at `rate_bps`, following the paper's
// convention (no preamble/IFG accounting).
inline SimTime SerializationDelay(uint32_t frame_bytes, double rate_bps) {
  return rate_bps > 0 ? static_cast<double>(frame_bytes) * 8.0 / rate_bps : 0.0;
}

}  // namespace rb

#endif  // RB_COMMON_TIME_HPP_
