#include "common/strings.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace rb {

std::string Format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) {
    b++;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r')) {
    e--;
  }
  return s.substr(b, e - b);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string HumanBitRate(double bps) {
  if (bps >= 1e9) {
    return Format("%.2f Gbps", bps / 1e9);
  }
  if (bps >= 1e6) {
    return Format("%.2f Mbps", bps / 1e6);
  }
  if (bps >= 1e3) {
    return Format("%.2f Kbps", bps / 1e3);
  }
  return Format("%.0f bps", bps);
}

std::string HumanPacketRate(double pps) {
  if (pps >= 1e6) {
    return Format("%.2f Mpps", pps / 1e6);
  }
  if (pps >= 1e3) {
    return Format("%.2f Kpps", pps / 1e3);
  }
  return Format("%.0f pps", pps);
}

bool ParseIpv4(const std::string& s, uint32_t* out) {
  unsigned a, b, c, d;
  char extra;
  if (sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4) {
    return false;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return false;
  }
  *out = (a << 24) | (b << 16) | (c << 8) | d;
  return true;
}

std::string Ipv4ToString(uint32_t addr) {
  return Format("%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff, (addr >> 8) & 0xff,
                addr & 0xff);
}

}  // namespace rb
