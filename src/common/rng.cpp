#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace rb {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: used only to expand the seed into the 256-bit state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) { Seed(seed); }

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RB_CHECK(bound > 0);
  // Lemire's method with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  RB_CHECK(lo <= hi);
  return lo + NextBounded(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  RB_CHECK(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::NextPareto(double xm, double alpha) {
  RB_CHECK(xm > 0 && alpha > 0);
  double u = NextDouble();
  if (u >= 1.0) {
    u = 1.0 - 0x1.0p-53;
  }
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  RB_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  RB_CHECK(total > 0);
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace rb
