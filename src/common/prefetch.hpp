// Software-prefetch helpers for the batch hot path.
//
// The lane-partition loops (CheckIPHeader, IPLookup, DecIPTTL) touch each
// packet's annotation line and header bytes exactly once per burst; the
// access pattern is pointer-chasing through the PacketBatch array, which
// the hardware prefetcher cannot follow. Issuing an explicit prefetch for
// packet i+d while processing packet i overlaps the (likely) L2/L3 miss
// with useful work. The helpers compile to nothing on toolchains without
// __builtin_prefetch.
#ifndef RB_COMMON_PREFETCH_HPP_
#define RB_COMMON_PREFETCH_HPP_

namespace rb {

// Cache-line granularity assumed throughout the packet layout and the
// prefetch distance math. 64 B on every x86/ARM part we care about.
inline constexpr unsigned kCacheLineBytes = 64;

// Read-intent prefetch with high temporal locality (the line is about to
// be consumed by this same burst).
inline void PrefetchForRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

// Write-intent prefetch (header fields are about to be patched in place).
inline void PrefetchForWrite(void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace rb

#endif  // RB_COMMON_PREFETCH_HPP_
