#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace rb {

FlagSet::FlagSet(std::string program) : program_(std::move(program)) {}

int64_t* FlagSet::AddInt64(const std::string& name, int64_t def, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Type::kInt64;
  flag->i64 = std::make_unique<int64_t>(def);
  flag->default_repr = Format("%lld", static_cast<long long>(def));
  int64_t* out = flag->i64.get();
  flags_.push_back(std::move(flag));
  return out;
}

double* FlagSet::AddDouble(const std::string& name, double def, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Type::kDouble;
  flag->f64 = std::make_unique<double>(def);
  flag->default_repr = Format("%g", def);
  double* out = flag->f64.get();
  flags_.push_back(std::move(flag));
  return out;
}

bool* FlagSet::AddBool(const std::string& name, bool def, const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Type::kBool;
  flag->b = std::make_unique<bool>(def);
  flag->default_repr = def ? "true" : "false";
  bool* out = flag->b.get();
  flags_.push_back(std::move(flag));
  return out;
}

std::string* FlagSet::AddString(const std::string& name, const std::string& def,
                                const std::string& help) {
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->help = help;
  flag->type = Type::kString;
  flag->s = std::make_unique<std::string>(def);
  flag->default_repr = def;
  std::string* out = flag->s.get();
  flags_.push_back(std::move(flag));
  return out;
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f->name == name) {
      return f.get();
    }
  }
  return nullptr;
}

bool FlagSet::SetValue(Flag* flag, const std::string& value) {
  char* end = nullptr;
  switch (flag->type) {
    case Type::kInt64: {
      long long v = strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *flag->i64 = v;
      return true;
    }
    case Type::kDouble: {
      double v = strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return false;
      }
      *flag->f64 = v;
      return true;
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value == "yes") {
        *flag->b = true;
        return true;
      }
      if (value == "false" || value == "0" || value == "no") {
        *flag->b = false;
        return true;
      }
      return false;
    }
    case Type::kString:
      *flag->s = value;
      return true;
  }
  return false;
}

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printf("%s", Usage().c_str());
      exit(0);
    }
    if (!StartsWith(arg, "--")) {
      fprintf(stderr, "%s: unexpected argument '%s'\n%s", program_.c_str(), arg.c_str(),
              Usage().c_str());
      exit(2);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      Flag* f = Find(name);
      if (f != nullptr && f->type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        fprintf(stderr, "%s: flag --%s needs a value\n", program_.c_str(), name.c_str());
        exit(2);
      }
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      fprintf(stderr, "%s: unknown flag --%s\n%s", program_.c_str(), name.c_str(), Usage().c_str());
      exit(2);
    }
    if (!SetValue(flag, value)) {
      fprintf(stderr, "%s: bad value '%s' for --%s\n", program_.c_str(), value.c_str(),
              name.c_str());
      exit(2);
    }
  }
}

std::string FlagSet::Usage() const {
  std::string out = Format("usage: %s [flags]\n", program_.c_str());
  for (const auto& f : flags_) {
    out += Format("  --%-20s %s (default: %s)\n", f->name.c_str(), f->help.c_str(),
                  f->default_repr.c_str());
  }
  return out;
}

}  // namespace rb
