// A tiny command-line flag parser for bench and example binaries.
//
// Usage:
//   rb::FlagSet flags("bench_fig8");
//   auto* seed = flags.AddInt64("seed", 1, "RNG seed");
//   auto* dur = flags.AddDouble("duration", 0.05, "simulated seconds");
//   flags.Parse(argc, argv);   // accepts --name=value and --name value
//
// Unknown flags are an error; `--help` prints the registered flags and
// exits. This avoids pulling a third-party dependency into the benches.
#ifndef RB_COMMON_FLAGS_HPP_
#define RB_COMMON_FLAGS_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rb {

class FlagSet {
 public:
  explicit FlagSet(std::string program);

  int64_t* AddInt64(const std::string& name, int64_t def, const std::string& help);
  double* AddDouble(const std::string& name, double def, const std::string& help);
  bool* AddBool(const std::string& name, bool def, const std::string& help);
  std::string* AddString(const std::string& name, const std::string& def, const std::string& help);

  // Parses argv; on `--help` prints usage and exits(0); on error prints the
  // problem and exits(2).
  void Parse(int argc, char** argv);

  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    std::string help;
    Type type;
    std::unique_ptr<int64_t> i64;
    std::unique_ptr<double> f64;
    std::unique_ptr<bool> b;
    std::unique_ptr<std::string> s;
    std::string default_repr;
  };

  Flag* Find(const std::string& name);
  bool SetValue(Flag* flag, const std::string& value);

  std::string program_;
  std::vector<std::unique_ptr<Flag>> flags_;
};

}  // namespace rb

#endif  // RB_COMMON_FLAGS_HPP_
