// Minimal leveled logging for the RouteBricks library.
//
// Logging is intentionally tiny: benches and examples are the primary
// consumers and they mostly print structured tables via rb::harness. The
// logger exists so that library internals can report rare conditions
// (drops due to misconfiguration, invariant warnings) without depending
// on iostream formatting at call sites.
#ifndef RB_COMMON_LOG_HPP_
#define RB_COMMON_LOG_HPP_

#include <cstdarg>
#include <string>

namespace rb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging. Thread-safe (single write per message).
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define RB_LOG_DEBUG(...) ::rb::Logf(::rb::LogLevel::kDebug, __VA_ARGS__)
#define RB_LOG_INFO(...) ::rb::Logf(::rb::LogLevel::kInfo, __VA_ARGS__)
#define RB_LOG_WARN(...) ::rb::Logf(::rb::LogLevel::kWarn, __VA_ARGS__)
#define RB_LOG_ERROR(...) ::rb::Logf(::rb::LogLevel::kError, __VA_ARGS__)

// Fatal check macro: prints the failed expression and aborts. Used for
// programmer errors (invalid element graph wiring, out-of-range ports),
// never for data-plane conditions.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const char* msg);

// Optional last-words hook invoked (once) by CheckFailed between the
// failure report and abort(). Installed by the flight recorder so a fatal
// check ships a black-box dump; nullptr disarms. Must not fail a check
// itself (it is disarmed before invocation, so recursion aborts plainly).
void SetCheckFailureHook(void (*hook)());

#define RB_CHECK(expr)                                            \
  do {                                                            \
    if (!(expr)) {                                                \
      ::rb::CheckFailed(__FILE__, __LINE__, #expr, "");           \
    }                                                             \
  } while (0)

#define RB_CHECK_MSG(expr, msg)                                   \
  do {                                                            \
    if (!(expr)) {                                                \
      ::rb::CheckFailed(__FILE__, __LINE__, #expr, (msg));        \
    }                                                             \
  } while (0)

}  // namespace rb

#endif  // RB_COMMON_LOG_HPP_
