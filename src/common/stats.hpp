// Statistics primitives used across the library: counters, mean/variance
// accumulators, fixed-bucket histograms with percentile queries, and rate
// (bits/packets per second) bookkeeping for simulated time.
#ifndef RB_COMMON_STATS_HPP_
#define RB_COMMON_STATS_HPP_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rb {

// Online mean / variance / min / max (Welford's algorithm).
class MeanVar {
 public:
  void Add(double x);
  void Merge(const MeanVar& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Histogram over [lo, hi) with `buckets` equal-width buckets plus overflow
// and underflow buckets. Percentile queries interpolate within a bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  void Reset();

  uint64_t count() const { return count_; }

  // p in [0, 100]. Interpolates linearly within the target bucket. Samples
  // outside [lo, hi) land in the underflow/overflow buckets, which have no
  // width to interpolate over; a percentile whose target rank falls in the
  // underflow bucket returns the true observed min() (<= lo), and one that
  // falls in the overflow bucket returns the true observed max() (>= hi).
  // The result is therefore always within [min(), max()] but resolves to a
  // bucket edge value when the histogram range clipped the samples — check
  // underflow()/overflow() to detect clipping.
  double Percentile(double p) const;
  double mean() const { return acc_.mean(); }
  double max() const { return acc_.max(); }
  double min() const { return acc_.min(); }

  // Samples that fell outside [lo, hi) and were clipped to the edge
  // buckets (not interpolated).
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  // Renders "p50=.. p95=.. p99=.. max=.." for logging; appends
  // "uf=.. of=.." whenever any sample was clipped to an edge bucket.
  std::string Summary() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  MeanVar acc_;
};

// Simple monotonically increasing counters grouped by name; used for
// per-element and per-port statistics. A NIC port's counters are shared
// by all of its queues, which ThreadScheduler polls from different
// cores, so updates use relaxed atomics (reads convert implicitly).
struct PortCounters {
  std::atomic<uint64_t> packets{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> drops{0};

  void AddPacket(uint64_t wire_bytes) {
    packets.fetch_add(1, std::memory_order_relaxed);
    bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  }
  void AddDrop() { drops.fetch_add(1, std::memory_order_relaxed); }
  void Merge(const PortCounters& o) {
    packets.fetch_add(o.packets.load(std::memory_order_relaxed), std::memory_order_relaxed);
    bytes.fetch_add(o.bytes.load(std::memory_order_relaxed), std::memory_order_relaxed);
    drops.fetch_add(o.drops.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
};

// Converts packet counts and byte counts observed over `seconds` into rates.
struct Rate {
  double pps = 0.0;
  double bps = 0.0;

  static Rate FromCounts(uint64_t packets, uint64_t bytes, double seconds);
  double gbps() const { return bps / 1e9; }
  double mpps() const { return pps / 1e6; }
};

// Jain's fairness index over a set of allocations; 1.0 == perfectly fair.
double JainFairnessIndex(const std::vector<double>& xs);

}  // namespace rb

#endif  // RB_COMMON_STATS_HPP_
