#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace rb {

void MeanVar::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_++;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void MeanVar::Merge(const MeanVar& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  uint64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

void MeanVar::Reset() { *this = MeanVar(); }

double MeanVar::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double MeanVar::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  RB_CHECK(hi > lo);
  RB_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  count_++;
  acc_.Add(x);
  if (x < lo_) {
    underflow_++;
    return;
  }
  if (x >= hi_) {
    overflow_++;
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;
  }
  counts_[idx]++;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  acc_.Reset();
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = underflow_;
  if (seen >= target) {
    // Target rank lies among the clipped below-range samples; the observed
    // minimum is the only honest point estimate available.
    return acc_.min();
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (seen + counts_[i] >= target) {
      // Linear interpolation within the bucket.
      double frac = counts_[i] ? static_cast<double>(target - seen) / static_cast<double>(counts_[i]) : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    seen += counts_[i];
  }
  // Target rank lies among the clipped above-range samples (overflow
  // bucket): report the observed maximum.
  return acc_.max();
}

std::string Histogram::Summary() const {
  char buf[256];
  snprintf(buf, sizeof(buf), "n=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
           static_cast<unsigned long long>(count_), mean(), Percentile(50), Percentile(95),
           Percentile(99), max());
  std::string out = buf;
  if (underflow_ > 0 || overflow_ > 0) {
    snprintf(buf, sizeof(buf), " uf=%llu of=%llu", static_cast<unsigned long long>(underflow_),
             static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

Rate Rate::FromCounts(uint64_t packets, uint64_t bytes, double seconds) {
  Rate r;
  if (seconds > 0) {
    r.pps = static_cast<double>(packets) / seconds;
    r.bps = static_cast<double>(bytes) * 8.0 / seconds;
  }
  return r;
}

double JainFairnessIndex(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) {
    return 1.0;
  }
  double n = static_cast<double>(xs.size());
  return (sum * sum) / (n * sumsq);
}

}  // namespace rb
