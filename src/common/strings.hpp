// Small string helpers: printf-style Format, Split/Join, and
// human-readable rate/byte rendering used by the bench harness.
#ifndef RB_COMMON_STRINGS_HPP_
#define RB_COMMON_STRINGS_HPP_

#include <string>
#include <vector>

namespace rb {

std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> Split(const std::string& s, char sep);
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

bool StartsWith(const std::string& s, const std::string& prefix);

// "9.70 Gbps", "18.96 Mpps", "1.46 Kpps" etc.
std::string HumanBitRate(double bps);
std::string HumanPacketRate(double pps);

// Parses dotted-quad "a.b.c.d" into a host-order uint32. Returns false on
// malformed input.
bool ParseIpv4(const std::string& s, uint32_t* out);
std::string Ipv4ToString(uint32_t addr_host_order);

}  // namespace rb

#endif  // RB_COMMON_STRINGS_HPP_
