// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (workload generation, VLB
// intermediate-node selection, prefix-table synthesis) flows through Rng so
// that experiments are reproducible from a seed. The generator is
// xoshiro256** (Blackman/Vigna), which is fast, has 256-bit state, and
// passes BigCrush; we avoid <random> engines in the data path because their
// distributions are not stable across standard-library implementations.
#ifndef RB_COMMON_RNG_HPP_
#define RB_COMMON_RNG_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  // Pareto distributed with scale xm > 0 and shape alpha > 0. Heavy-tailed;
  // used for flow sizes.
  double NextPareto(double xm, double alpha);

  // Samples an index according to `weights` (need not be normalized).
  size_t NextWeighted(const std::vector<double>& weights);

  // Re-seeds the generator (same as constructing anew).
  void Seed(uint64_t seed);

 private:
  uint64_t s_[4];
};

}  // namespace rb

#endif  // RB_COMMON_RNG_HPP_
