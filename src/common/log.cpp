#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace rb {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  fprintf(stderr, "[%s] %s\n", LevelName(level), buf);
}

namespace {
std::atomic<void (*)()> g_check_hook{nullptr};
}  // namespace

void SetCheckFailureHook(void (*hook)()) { g_check_hook.store(hook, std::memory_order_release); }

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  fprintf(stderr, "RB_CHECK failed at %s:%d: %s %s\n", file, line, expr, msg);
  fflush(stderr);
  // Last-words hook (the flight recorder's crash dump) runs after the
  // failure report so the dump can't obscure what failed. A hook that
  // itself fails a check would recurse; disarm first.
  if (void (*hook)() = g_check_hook.exchange(nullptr, std::memory_order_acq_rel)) {
    hook();
  }
  abort();
}

}  // namespace rb
