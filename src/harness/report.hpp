// Experiment reporting: aligned paper-vs-measured tables printed by every
// bench binary, plus CSV output for plotting.
#ifndef RB_HARNESS_REPORT_HPP_
#define RB_HARNESS_REPORT_HPP_

#include <string>
#include <vector>

namespace rb {

class Report {
 public:
  // `id` e.g. "Figure 8", `title` a one-line description.
  Report(std::string id, std::string title);

  void SetColumns(std::vector<std::string> names);
  void AddRow(std::vector<std::string> cells);

  // Free-form annotation printed under the table.
  void AddNote(std::string note);

  // Prints the table to stdout.
  void Print() const;

  // Writes rows as CSV to `path` (columns header included).
  bool WriteCsv(const std::string& path) const;

  // Writes the table as a JSON document:
  //   {"id", "title", "columns": [...], "rows": [[...], ...],
  //    "notes": [...]}
  bool WriteJson(const std::string& path) const;

 private:
  std::string id_;
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

// Formats a ratio "ours/paper" as e.g. "0.97x" for deviation columns.
std::string RatioCell(double ours, double paper);

}  // namespace rb

#endif  // RB_HARNESS_REPORT_HPP_
