// Shared --metrics-out plumbing for bench and example binaries: every
// binary registers the flag, and when the user passes a path, the final
// telemetry state (registry counters/gauges/histograms, traces, probe
// series — whatever the binary collected) is dumped there as one JSON
// document (telemetry/export.hpp describes the shape).
#ifndef RB_HARNESS_METRICS_OUT_HPP_
#define RB_HARNESS_METRICS_OUT_HPP_

#include <string>

#include "common/flags.hpp"
#include "telemetry/export.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace_export.hpp"

namespace rb {

// Registers "--metrics-out" on `flags`; the returned string is owned by
// the FlagSet and holds the output path after Parse ("" = disabled).
std::string* AddMetricsOutFlag(FlagSet* flags);

// Registers "--profile-out" on `flags`: where to write the cycle-accounting
// profile (ProfileSnapshot::ToJson) collected when a Profiler is installed.
std::string* AddProfileOutFlag(FlagSet* flags);

// Registers "--trace-out" on `flags`: where to write the sampled path
// traces as Chrome/Perfetto trace-event JSON (telemetry/trace_export.hpp).
// Load the file in ui.perfetto.dev or chrome://tracing.
std::string* AddTraceOutFlag(FlagSet* flags);

// Writes `bundle` as JSON to `path`; a no-op when `path` is empty.
// Prints the destination on success, a warning on I/O failure. Returns
// false only on failure.
bool MaybeWriteMetrics(const std::string& path, const telemetry::ExportBundle& bundle);

// Convenience overload: dumps the process-global registry.
bool MaybeWriteMetrics(const std::string& path);

// Writes `snapshot` as JSON to `path`; a no-op when `path` is empty.
// Same reporting contract as MaybeWriteMetrics.
bool MaybeWriteProfile(const std::string& path, const telemetry::ProfileSnapshot& snapshot);

// Writes `tracer`'s sampled spans as trace-event JSON to `path`; a no-op
// when `path` is empty. Same reporting contract as MaybeWriteMetrics.
bool MaybeWriteTrace(const std::string& path, const telemetry::PathTracer& tracer);

}  // namespace rb

#endif  // RB_HARNESS_METRICS_OUT_HPP_
