// Shared --control-socket plumbing for bench and example binaries
// (DESIGN.md §13): one ControlPlane per process bundles the handler
// registry, the control-socket server, and the built-in process handlers
// (`ctl.status`, `ctl.stop`, `fr.dump`, `fr.recorded`), so a binary adds
// live introspection with three lines:
//
//   rb::FlagSet flags("ip_router");
//   std::string* addr = rb::AddControlSocketFlag(&flags);
//   ...
//   rb::ControlPlane ctl(&registry, &tracer);
//   router.graph().AddHandlers(ctl.handlers());
//   if (!ctl.MaybeStart(*addr)) return 1;
//   while (!ctl.stop_requested() && ...) { workload }
//
// The address is either an all-digits TCP port on 127.0.0.1 (0 =
// ephemeral, printed at start) or a Unix-socket path. Scripts talk the
// line protocol (READ/WRITE/LIST) or scrape GET /metrics — see
// tools/rb_top.cpp and tools/control_socket_smoke.py.
#ifndef RB_HARNESS_CONTROL_HPP_
#define RB_HARNESS_CONTROL_HPP_

#include <atomic>
#include <string>

#include "common/flags.hpp"
#include "telemetry/control_socket.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rb {

// Registers "--control-socket" on `flags`; the returned string is owned
// by the FlagSet and holds the address after Parse ("" = disabled).
std::string* AddControlSocketFlag(FlagSet* flags);

class ControlPlane {
 public:
  // `registry` backs GET /metrics[.json]; `tracer` (optional) adds the
  // tracer handlers and its traces to /metrics.json. Both must outlive
  // the plane. Built-in handlers registered here:
  //   ctl.status (r): "running addr=<addr> handlers=<n>"
  //   ctl.stop   (w): any value; flips stop_requested() — the workload
  //                   loop's cooperative shutdown signal
  //   fr.recorded(r): events ever recorded (when a FlightRecorder is
  //                   installed at construction time)
  //   fr.dump   (r/w): read returns the current tail; write "<path>"
  //                   dumps it to a file
  ControlPlane(const telemetry::MetricRegistry* registry,
               telemetry::PathTracer* tracer = nullptr);

  // Starts the server when `address` is non-empty; prints the resolved
  // endpoint ("control socket on 127.0.0.1:<port>" / "<path>"). Returns
  // false (with a message on stderr) only on bind/listen failure.
  bool MaybeStart(const std::string& address);
  void Stop();

  telemetry::HandlerRegistry* handlers() { return &handlers_; }
  telemetry::ControlSocketServer* server() { return &server_; }
  bool running() const { return server_.running(); }
  // TCP port when started on a numeric address (useful with port 0).
  int port() const { return server_.port(); }

  // Set by the ctl.stop write handler (relaxed: polled by the workload
  // loop at its own pace).
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  ~ControlPlane();

 private:
  telemetry::HandlerRegistry handlers_;
  telemetry::ControlSocketServer server_;
  std::atomic<bool> stop_{false};
};

}  // namespace rb

#endif  // RB_HARNESS_CONTROL_HPP_
