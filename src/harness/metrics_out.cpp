#include "harness/metrics_out.hpp"

#include <cstdio>
#include <fstream>

namespace rb {

std::string* AddMetricsOutFlag(FlagSet* flags) {
  return flags->AddString("metrics-out", "", "write a telemetry JSON snapshot to this path");
}

bool MaybeWriteMetrics(const std::string& path, const telemetry::ExportBundle& bundle) {
  if (path.empty()) {
    return true;
  }
  if (!telemetry::WriteJson(path, bundle)) {
    fprintf(stderr, "warning: failed to write metrics to %s\n", path.c_str());
    return false;
  }
  printf("metrics written to %s\n", path.c_str());
  return true;
}

bool MaybeWriteMetrics(const std::string& path) {
  telemetry::ExportBundle bundle;
  bundle.registry = &telemetry::MetricRegistry::Global();
  return MaybeWriteMetrics(path, bundle);
}

std::string* AddProfileOutFlag(FlagSet* flags) {
  return flags->AddString("profile-out", "",
                          "write a cycle-accounting profile JSON to this path");
}

std::string* AddTraceOutFlag(FlagSet* flags) {
  return flags->AddString("trace-out", "",
                          "write sampled path traces as Perfetto trace-event JSON to this path");
}

bool MaybeWriteTrace(const std::string& path, const telemetry::PathTracer& tracer) {
  if (path.empty()) {
    return true;
  }
  if (!telemetry::WriteTraceEventFile(tracer, path)) {
    fprintf(stderr, "warning: failed to write trace to %s\n", path.c_str());
    return false;
  }
  printf("trace written to %s (open in ui.perfetto.dev)\n", path.c_str());
  return true;
}

bool MaybeWriteProfile(const std::string& path, const telemetry::ProfileSnapshot& snapshot) {
  if (path.empty()) {
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    fprintf(stderr, "warning: failed to write profile to %s\n", path.c_str());
    return false;
  }
  out << snapshot.ToJson() << "\n";
  if (!out.good()) {
    fprintf(stderr, "warning: failed to write profile to %s\n", path.c_str());
    return false;
  }
  printf("profile written to %s\n", path.c_str());
  return true;
}

}  // namespace rb
