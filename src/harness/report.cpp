#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"
#include "telemetry/json.hpp"

namespace rb {

Report::Report(std::string id, std::string title) : id_(std::move(id)), title_(std::move(title)) {}

void Report::SetColumns(std::vector<std::string> names) { columns_ = std::move(names); }

void Report::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Report::AddNote(std::string note) { notes_.push_back(std::move(note)); }

void Report::Print() const {
  printf("\n=== %s: %s ===\n", id_.c_str(), title_.c_str());
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    printf("  ");
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  printf("  %s\n", rule.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
  for (const auto& note : notes_) {
    printf("  note: %s\n", note.c_str());
  }
  printf("\n");
}

bool Report::WriteCsv(const std::string& path) const {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      fprintf(f, "%s%s", c ? "," : "", cells[c].c_str());
    }
    fprintf(f, "\n");
  };
  write_row(columns_);
  for (const auto& row : rows_) {
    write_row(row);
  }
  fclose(f);
  return true;
}

bool Report::WriteJson(const std::string& path) const {
  telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id_);
  w.Key("title");
  w.String(title_);
  w.Key("columns");
  w.BeginArray();
  for (const auto& c : columns_) {
    w.String(c);
  }
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  for (const auto& row : rows_) {
    w.BeginArray();
    for (const auto& cell : row) {
      w.String(cell);
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("notes");
  w.BeginArray();
  for (const auto& note : notes_) {
    w.String(note);
  }
  w.EndArray();
  w.EndObject();

  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string& text = w.str();
  bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = fputc('\n', f) != EOF && ok;
  fclose(f);
  return ok;
}

std::string RatioCell(double ours, double paper) {
  if (paper == 0) {
    return "n/a";
  }
  return Format("%.2fx", ours / paper);
}

}  // namespace rb
