#include "harness/control.hpp"

#include <cstdio>

#include "common/strings.hpp"
#include "telemetry/flight_recorder.hpp"

namespace rb {

std::string* AddControlSocketFlag(FlagSet* flags) {
  return flags->AddString("control-socket", "",
                          "serve live handlers/metrics on this TCP port (digits; 0 = "
                          "ephemeral) or Unix socket path; empty = disabled");
}

ControlPlane::ControlPlane(const telemetry::MetricRegistry* registry,
                           telemetry::PathTracer* tracer)
    : server_(&handlers_, registry, tracer) {
  handlers_.AddRead("ctl.status", [this] {
    return Format("running addr=%s handlers=%zu", server_.address().c_str(), handlers_.size());
  });
  handlers_.AddWrite("ctl.stop", [this](const std::string&) {
    stop_.store(true, std::memory_order_relaxed);
    return telemetry::HandlerResult::Ok();
  });
  if (telemetry::FlightRecorder* fr = telemetry::FlightRecorder::Installed()) {
    handlers_.AddRead("fr.recorded", [fr] {
      return Format("%llu", static_cast<unsigned long long>(fr->recorded()));
    });
    handlers_.AddRead("fr.dump", [fr] { return fr->Dump(); });
    handlers_.AddWrite("fr.dump", [fr](const std::string& path) {
      if (path.empty()) {
        return telemetry::HandlerResult::Error("expected a file path");
      }
      if (!fr->DumpToFile(path)) {
        return telemetry::HandlerResult::Error("cannot write " + path);
      }
      return telemetry::HandlerResult::Ok();
    });
  }
  if (tracer != nullptr) {
    tracer->AddHandlers(&handlers_);
  }
}

bool ControlPlane::MaybeStart(const std::string& address) {
  if (address.empty()) {
    return true;
  }
  std::string error;
  if (!server_.Start(address, &error)) {
    std::fprintf(stderr, "control socket: %s\n", error.c_str());
    return false;
  }
  if (server_.port() != 0) {
    std::fprintf(stderr, "control socket on 127.0.0.1:%d\n", server_.port());
  } else {
    std::fprintf(stderr, "control socket on %s\n", server_.address().c_str());
  }
  return true;
}

void ControlPlane::Stop() { server_.Stop(); }

ControlPlane::~ControlPlane() { Stop(); }

}  // namespace rb
