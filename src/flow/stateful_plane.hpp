// The cluster's stateful-NF plane: a distributed source-NAT state
// machine layered over the DES (DESIGN.md §17).
//
// Every flow has a *home* shard (flow_id mod N, one shard per node);
// the node owning that shard runs the flow's state updates — allocating
// a NAT mapping on the first packet, marking the flow established,
// accumulating bytes. The plane models the ablation the SCR paper
// frames as the central design axis:
//
//  - kShared: state lives only in the owner's memory. When a
//    FailureSchedule kills the node, every flow homed there loses its
//    mapping; the failover owner starts from an empty table and a
//    bumped incarnation counter, so re-established flows provably get
//    *different* mappings (real-world symptom: every NAT'd connection
//    through the dead node resets).
//  - kScr: the owner also appends each update's inputs to a per-shard
//    replicated log (ScrLog) with periodic checkpoints. On detected
//    failure the failover owner replays snapshot + tail through the
//    same deterministic update function, reconstructing byte-identical
//    mappings — established flows survive the kill-a-node timeline.
//
// Failure semantics follow PR 2's apply-vs-detect split: between the
// ground-truth failure (ApplyFailure) and its detection
// (failure_detection_delay later), packets for the dead owner's flows
// find no reachable state; they are counted `state_unavailable` and
// still forwarded (the data plane does not block on the control plane).
// Ownership moves at *detection* time, like VLB's OnNodeUnhealthy.
#ifndef RB_FLOW_STATEFUL_PLANE_HPP_
#define RB_FLOW_STATEFUL_PLANE_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/flow_table.hpp"
#include "flow/scr.hpp"

namespace rb {

namespace telemetry {
class HandlerRegistry;
class MetricRegistry;
}  // namespace telemetry

enum class StateMode : uint8_t {
  kShared,  // naive shared-state baseline: failover loses the shard
  kScr,     // state-compute replication: failover replays the log
};

struct StatefulPlaneConfig {
  bool enabled = false;
  StateMode mode = StateMode::kScr;
  size_t capacity_per_node = size_t{1} << 16;  // slots per home shard
  size_t checkpoint_period = 4096;             // SCR log records per checkpoint
  uint32_t idle_timeout = 0;                   // ticks; 0 = never idle-evict
  int max_probe_buckets = 8;
  double hi_watermark = 0.85;
  double lo_watermark = 0.70;
};

struct StatefulPlaneStats {
  uint64_t packets = 0;            // state updates attempted
  uint64_t flows_created = 0;      // first-packet mapping allocations
  uint64_t state_unavailable = 0;  // owner dead, not yet detected
  uint64_t table_full = 0;         // insert failed (eviction disabled)
  uint64_t evictions = 0;          // aggregated over home tables
  uint64_t failovers = 0;          // home shards that changed owner
  uint64_t lost_flows = 0;         // flows dropped on shared-mode failover
  uint64_t replays = 0;            // SCR shard replays
  uint64_t replayed_records = 0;   // log records re-executed
  uint64_t checkpoints = 0;
  uint64_t log_appended = 0;
  uint64_t active_flows = 0;       // live table occupancy at snapshot time
};

class StatefulPlane {
 public:
  StatefulPlane(const StatefulPlaneConfig& config, int nodes);

  // One packet's state update at its ingress node: called by the DES at
  // the kCpuIngress stage (after admission, before VLB routing). Never
  // blocks or fails the packet — state trouble is counted, forwarding
  // continues.
  void Apply(uint64_t flow_id, uint32_t bytes, uint32_t tick);

  // Failure timeline hooks (ClusterSim wires these to FailureSchedule).
  void OnNodeDown(int node);          // ground truth: memory is gone
  void OnNodeDetectedDown(int node);  // detection: ownership fails over
  void OnNodeUp(int node);

  int HomeOf(uint64_t flow_id) const {
    return static_cast<int>(flow_id % static_cast<uint64_t>(nodes_));
  }
  int OwnerOf(uint64_t flow_id) const { return owner_[HomeOf(flow_id)]; }

  // The synthetic 5-tuple a DES flow id keys state under; invertible
  // (flow id in the address words) so snapshots can report per-flow.
  static FlowKey KeyForFlow(uint64_t flow_id);
  static uint64_t FlowOfKey(const FlowKey& key);

  // flow_id -> NAT mapping word, over every live entry. The failover
  // differential test compares these across runs byte-for-byte.
  std::map<uint64_t, uint64_t> MappingSnapshot() const;

  StatefulPlaneStats stats() const;
  StateMode mode() const { return config_.mode; }
  int nodes() const { return nodes_; }
  const ScrLog* log() const { return log_.get(); }

  // "cluster.stateful.*" read handlers: mode, flows, state_unavailable,
  // evictions, replays, replayed_records, lost_flows, failovers.
  void AddHandlers(telemetry::HandlerRegistry* handlers, const std::string& owner);
  // Final counters under "<prefix>des/stateful/..." (called from
  // ClusterSim::FinishTelemetry, once).
  void ExportTelemetry(telemetry::MetricRegistry* registry,
                       const std::string& prefix) const;

 private:
  // The deterministic per-packet update function — the "compute" SCR
  // replicates. Replay calls exactly this.
  void UpdateState(int home, uint64_t flow_id, uint32_t bytes, uint32_t tick);
  void Checkpoint(int home);
  void Replay(int home);
  int NextAliveAfter(int node) const;
  uint64_t MakeMapping(int home) ;

  StatefulPlaneConfig config_;
  int nodes_;
  std::vector<std::unique_ptr<FlowTable>> tables_;  // one per home shard
  std::unique_ptr<ScrLog> log_;                     // SCR mode only
  std::vector<int> owner_;            // home shard -> owning node (sticky)
  std::vector<uint64_t> alloc_next_;  // per-home mapping allocator cursor
  std::vector<uint32_t> incarnation_;  // bumped on shared-mode failover
  std::vector<bool> node_alive_;       // ground truth
  std::vector<bool> node_detected_alive_;

  uint64_t packets_ = 0;
  uint64_t flows_created_ = 0;
  uint64_t state_unavailable_ = 0;
  uint64_t table_full_ = 0;
  uint64_t failovers_ = 0;
  uint64_t lost_flows_ = 0;
  uint64_t replays_ = 0;
  uint64_t replayed_records_ = 0;
};

}  // namespace rb

#endif  // RB_FLOW_STATEFUL_PLANE_HPP_
