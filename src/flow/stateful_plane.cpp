#include "flow/stateful_plane.hpp"

#include "common/log.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"

namespace rb {

StatefulPlane::StatefulPlane(const StatefulPlaneConfig& config, int nodes)
    : config_(config), nodes_(nodes) {
  RB_CHECK(nodes_ >= 1);
  tables_.reserve(static_cast<size_t>(nodes_));
  for (int i = 0; i < nodes_; ++i) {
    FlowTableConfig tc;
    tc.capacity = config_.capacity_per_node;
    tc.shards = 1;  // a home shard has one owner; no internal sharding
    tc.max_probe_buckets = config_.max_probe_buckets;
    tc.hi_watermark = config_.hi_watermark;
    tc.lo_watermark = config_.lo_watermark;
    tc.idle_timeout = config_.idle_timeout;
    tables_.push_back(std::make_unique<FlowTable>(tc));
  }
  if (config_.mode == StateMode::kScr) {
    log_ = std::make_unique<ScrLog>(nodes_, config_.checkpoint_period);
  }
  owner_.resize(static_cast<size_t>(nodes_));
  for (int i = 0; i < nodes_; ++i) {
    owner_[static_cast<size_t>(i)] = i;
  }
  alloc_next_.assign(static_cast<size_t>(nodes_), 0);
  incarnation_.assign(static_cast<size_t>(nodes_), 0);
  node_alive_.assign(static_cast<size_t>(nodes_), true);
  node_detected_alive_.assign(static_cast<size_t>(nodes_), true);
}

FlowKey StatefulPlane::KeyForFlow(uint64_t flow_id) {
  // Address words carry the flow id verbatim (snapshots invert them);
  // ports and protocol come from the stable hash so keys look like
  // plausible 5-tuples without costing determinism.
  FlowKey key;
  key.src_ip = static_cast<uint32_t>(flow_id >> 32);
  key.dst_ip = static_cast<uint32_t>(flow_id);
  FlowKey seed{key.src_ip, key.dst_ip, 0, 0, 0};
  const uint64_t h = FlowHash64(seed);
  key.src_port = static_cast<uint16_t>(h);
  key.dst_port = static_cast<uint16_t>(h >> 16);
  key.protocol = 6;  // TCP
  return key;
}

uint64_t StatefulPlane::FlowOfKey(const FlowKey& key) {
  return (static_cast<uint64_t>(key.src_ip) << 32) | key.dst_ip;
}

uint64_t StatefulPlane::MakeMapping(int home) {
  // incarnation | home | allocation sequence: unique per flow within an
  // incarnation, and *provably different* across a shared-mode failover
  // (the incarnation bump), which is what the differential test keys on.
  const uint64_t seq = alloc_next_[static_cast<size_t>(home)]++;
  return (static_cast<uint64_t>(incarnation_[static_cast<size_t>(home)]) << 48) |
         (static_cast<uint64_t>(home) << 40) | seq;
}

void StatefulPlane::UpdateState(int home, uint64_t flow_id, uint32_t bytes,
                                uint32_t tick) {
  const FlowKey key = KeyForFlow(flow_id);
  bool inserted = false;
  FlowEntry* e = tables_[static_cast<size_t>(home)]->FindOrInsert(key, tick, &inserted);
  if (e == nullptr) {
    ++table_full_;
    return;
  }
  if (inserted) {
    e->state0 = MakeMapping(home);
    ++flows_created_;
  }
  e->flags |= FlowEntry::kEstablished;
  e->state1 += bytes;  // per-flow byte counter (mod 2^32)
}

void StatefulPlane::Apply(uint64_t flow_id, uint32_t bytes, uint32_t tick) {
  ++packets_;
  const int home = HomeOf(flow_id);
  const int owner = owner_[static_cast<size_t>(home)];
  if (!node_alive_[static_cast<size_t>(owner)]) {
    // Blind window: the owner is dead but not yet detected, so the
    // update has nowhere to run. The packet itself keeps forwarding.
    ++state_unavailable_;
    return;
  }
  if (log_ != nullptr) {
    if (log_->NeedsCheckpoint(home)) {
      Checkpoint(home);
    }
    log_->Append(home, ScrRecord{flow_id, tick, bytes});
  }
  UpdateState(home, flow_id, bytes, tick);
}

void StatefulPlane::Checkpoint(int home) {
  ScrSnapshot snap;
  snap.alloc_next = alloc_next_[static_cast<size_t>(home)];
  snap.entries.reserve(tables_[static_cast<size_t>(home)]->occupancy());
  tables_[static_cast<size_t>(home)]->ForEachInShard(
      0, [&snap](const FlowEntry& e) { snap.entries.push_back(e); });
  log_->InstallCheckpoint(home, std::move(snap));
}

void StatefulPlane::Replay(int home) {
  const ScrSnapshot& snap = log_->snapshot(home);
  FlowTable& table = *tables_[static_cast<size_t>(home)];
  alloc_next_[static_cast<size_t>(home)] = snap.alloc_next;
  for (const FlowEntry& e : snap.entries) {
    table.Restore(0, e);
  }
  const auto& tail = log_->tail(home);
  for (const ScrRecord& r : tail) {
    UpdateState(home, r.flow_id, r.bytes, r.tick);
  }
  ++replays_;
  replayed_records_ += tail.size();
}

int StatefulPlane::NextAliveAfter(int node) const {
  for (int step = 1; step < nodes_; ++step) {
    const int candidate = (node + step) % nodes_;
    if (node_detected_alive_[static_cast<size_t>(candidate)]) {
      return candidate;
    }
  }
  return node;  // everything is down; ownership parks in place
}

void StatefulPlane::OnNodeDown(int node) {
  node_alive_[static_cast<size_t>(node)] = false;
}

void StatefulPlane::OnNodeDetectedDown(int node) {
  node_detected_alive_[static_cast<size_t>(node)] = false;
  const int new_owner = NextAliveAfter(node);
  if (new_owner == node) {
    return;
  }
  for (int home = 0; home < nodes_; ++home) {
    if (owner_[static_cast<size_t>(home)] != node) {
      continue;
    }
    ++failovers_;
    FlowTable& table = *tables_[static_cast<size_t>(home)];
    if (config_.mode == StateMode::kShared) {
      // The dead node's memory is unrecoverable and nothing else holds
      // the state: the failover owner starts empty, under a new
      // incarnation so fresh mappings never collide with lost ones.
      lost_flows_ += table.occupancy();
      table.Clear();
      ++incarnation_[static_cast<size_t>(home)];
    } else {
      // SCR: the replicated log survives the node. Drop whatever view
      // this process held of the dead shard and reconstruct from
      // snapshot + tail through the same update function.
      table.Clear();
      Replay(home);
    }
    owner_[static_cast<size_t>(home)] = new_owner;
  }
}

void StatefulPlane::OnNodeUp(int node) {
  node_alive_[static_cast<size_t>(node)] = true;
  node_detected_alive_[static_cast<size_t>(node)] = true;
  // Ownership stays with the failover target (sticky): moving flows
  // back would lose state in shared mode and buy nothing in SCR mode.
}

std::map<uint64_t, uint64_t> StatefulPlane::MappingSnapshot() const {
  std::map<uint64_t, uint64_t> out;
  for (int home = 0; home < nodes_; ++home) {
    tables_[static_cast<size_t>(home)]->ForEachInShard(0, [&out](const FlowEntry& e) {
      out[FlowOfKey(e.key())] = e.state0;
    });
  }
  return out;
}

StatefulPlaneStats StatefulPlane::stats() const {
  StatefulPlaneStats s;
  s.packets = packets_;
  s.flows_created = flows_created_;
  s.state_unavailable = state_unavailable_;
  s.table_full = table_full_;
  s.failovers = failovers_;
  s.lost_flows = lost_flows_;
  s.replays = replays_;
  s.replayed_records = replayed_records_;
  if (log_ != nullptr) {
    s.checkpoints = log_->checkpoints();
    s.log_appended = log_->appended();
  }
  for (const auto& t : tables_) {
    s.evictions += t->stats().evictions();
    s.active_flows += t->occupancy();
  }
  return s;
}

void StatefulPlane::AddHandlers(telemetry::HandlerRegistry* handlers,
                                const std::string& owner) {
  handlers->AddRead(owner + ".mode", [this] {
    return std::string(config_.mode == StateMode::kScr ? "scr" : "shared");
  });
  handlers->AddRead(owner + ".flows",
                    [this] { return std::to_string(stats().active_flows); });
  handlers->AddRead(owner + ".state_unavailable",
                    [this] { return std::to_string(state_unavailable_); });
  handlers->AddRead(owner + ".evictions",
                    [this] { return std::to_string(stats().evictions); });
  handlers->AddRead(owner + ".replays", [this] { return std::to_string(replays_); });
  handlers->AddRead(owner + ".replayed_records",
                    [this] { return std::to_string(replayed_records_); });
  handlers->AddRead(owner + ".lost_flows",
                    [this] { return std::to_string(lost_flows_); });
  handlers->AddRead(owner + ".failovers",
                    [this] { return std::to_string(failovers_); });
}

void StatefulPlane::ExportTelemetry(telemetry::MetricRegistry* registry,
                                    const std::string& prefix) const {
  if (registry == nullptr) {
    return;
  }
  const StatefulPlaneStats s = stats();
  const std::string base = prefix + "des/stateful/";
  registry->GetCounter(base + "packets")->Add(s.packets);
  registry->GetCounter(base + "flows_created")->Add(s.flows_created);
  registry->GetCounter(base + "state_unavailable")->Add(s.state_unavailable);
  registry->GetCounter(base + "table_full")->Add(s.table_full);
  registry->GetCounter(base + "evictions")->Add(s.evictions);
  registry->GetCounter(base + "failovers")->Add(s.failovers);
  registry->GetCounter(base + "lost_flows")->Add(s.lost_flows);
  registry->GetCounter(base + "replays")->Add(s.replays);
  registry->GetCounter(base + "replayed_records")->Add(s.replayed_records);
  registry->GetGauge(base + "active_flows")->Set(static_cast<double>(s.active_flows));
}

}  // namespace rb
