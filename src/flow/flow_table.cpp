#include "flow/flow_table.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"

namespace rb {
namespace {

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// last_seen comparison tolerant of 32-bit tick wraparound.
bool TickBefore(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }

}  // namespace

FlowTable::FlowTable(const FlowTableConfig& config) : config_(config) {
  RB_CHECK(config_.capacity > 0);
  RB_CHECK(config_.shards >= 1);
  RB_CHECK(config_.max_probe_buckets >= 1);
  const size_t n_shards = NextPow2(static_cast<size_t>(config_.shards));
  shard_mask_ = n_shards - 1;
  buckets_per_shard_ =
      NextPow2((config_.capacity + 2 * n_shards - 1) / (2 * n_shards));
  buckets_per_shard_ =
      std::max(buckets_per_shard_, static_cast<size_t>(config_.max_probe_buckets));
  bucket_mask_ = buckets_per_shard_ - 1;
  slots_per_shard_ = buckets_per_shard_ * 2;
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->buckets.resize(buckets_per_shard_);
    shards_.push_back(std::move(s));
  }
  probe_hist_ = std::vector<std::atomic<uint64_t>>(
      static_cast<size_t>(config_.max_probe_buckets));
  idle_timeout_.store(config_.idle_timeout, std::memory_order_relaxed);
  RB_CHECK_MSG(SetWatermarks(config_.hi_watermark, config_.lo_watermark),
               "invalid flow-table watermarks");
}

bool FlowTable::SetWatermarks(double hi, double lo) {
  if (!(hi > 0.0) || hi > 1.0 || !(lo > 0.0) || lo >= hi) {
    return false;
  }
  hi_watermark_.store(hi, std::memory_order_relaxed);
  lo_watermark_.store(lo, std::memory_order_relaxed);
  // hi == 1.0 disables watermark eviction entirely: occupancy can never
  // exceed capacity anyway, so "evict at 100%" would just override the
  // evict_on_full policy that is supposed to govern a full table.
  hi_slots_per_shard_.store(
      hi >= 1.0 ? UINT64_MAX
                : static_cast<uint64_t>(hi * static_cast<double>(slots_per_shard_)),
      std::memory_order_relaxed);
  return true;
}

bool FlowTable::IdleExpired(const FlowEntry& e, uint32_t now) const {
  const uint32_t timeout = idle_timeout_.load(std::memory_order_relaxed);
  return timeout != 0 && (now - e.last_seen) > timeout;
}

void FlowTable::EvictSlot(Shard& shard, FlowEntry* e,
                          std::atomic<uint64_t> Shard::* counter) {
  if (on_evict_) {
    on_evict_(*e);
  }
  *e = FlowEntry{};
  shard.occupancy.fetch_sub(1, std::memory_order_relaxed);
  (shard.*counter).fetch_add(1, std::memory_order_relaxed);
}

FlowEntry* FlowTable::FindOrInsertIn(Shard& s, const FlowKey& key, uint64_t hash,
                                     uint32_t now, bool* inserted) {
  const size_t b0 = BucketIndex(hash);
  const int window = config_.max_probe_buckets;
  FlowEntry* free_slot = nullptr;
  int free_bucket = 0;
  FlowEntry* lru = nullptr;
  int lru_bucket = 0;
  for (int b = 0; b < window; ++b) {
    Bucket& bucket = s.buckets[(b0 + b) & bucket_mask_];
    for (FlowEntry& e : bucket.slot) {
      if (e.occupied() && e.Matches(key)) {
        e.last_seen = now;
        s.hits.fetch_add(1, std::memory_order_relaxed);
        probe_hist_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
        if (inserted != nullptr) {
          *inserted = false;
        }
        return &e;
      }
      if (e.occupied() && IdleExpired(e, now)) {
        EvictSlot(s, &e, &Shard::evict_idle);
      }
      if (!e.occupied()) {
        if (free_slot == nullptr) {
          free_slot = &e;
          free_bucket = b;
        }
        continue;
      }
      if (lru == nullptr || TickBefore(e.last_seen, lru->last_seen)) {
        lru = &e;
        lru_bucket = b;
      }
    }
  }

  // Miss: pick the insertion slot. Above the high watermark a live LRU
  // entry is replaced even when a free slot exists, so occupancy
  // plateaus at the watermark instead of marching to table-full.
  const bool over = s.occupancy.load(std::memory_order_relaxed) >=
                    hi_slots_per_shard_.load(std::memory_order_relaxed);
  FlowEntry* target = nullptr;
  int target_bucket = 0;
  if (over && lru != nullptr) {
    EvictSlot(s, lru, &Shard::evict_watermark);
    target = lru;
    target_bucket = lru_bucket;
  } else if (free_slot != nullptr) {
    target = free_slot;
    target_bucket = free_bucket;
  } else if (config_.evict_on_full && lru != nullptr) {
    EvictSlot(s, lru, &Shard::evict_full);
    target = lru;
    target_bucket = lru_bucket;
  } else {
    s.insert_fail.fetch_add(1, std::memory_order_relaxed);
    if (inserted != nullptr) {
      *inserted = false;
    }
    return nullptr;
  }

  target->src_ip = key.src_ip;
  target->dst_ip = key.dst_ip;
  target->src_port = key.src_port;
  target->dst_port = key.dst_port;
  target->protocol = key.protocol;
  target->flags = FlowEntry::kOccupied;
  target->last_seen = now;
  target->state0 = 0;
  target->state1 = 0;
  s.occupancy.fetch_add(1, std::memory_order_relaxed);
  s.inserts.fetch_add(1, std::memory_order_relaxed);
  probe_hist_[static_cast<size_t>(target_bucket)].fetch_add(1,
                                                            std::memory_order_relaxed);
  if (inserted != nullptr) {
    *inserted = true;
  }
  return target;
}

FlowEntry* FlowTable::FindOrInsert(const FlowKey& key, uint32_t now, bool* inserted) {
  const uint64_t hash = FlowHash64(key);
  return FindOrInsertIn(ShardFor(hash), key, hash, now, inserted);
}

FlowEntry* FlowTable::Find(const FlowKey& key, uint32_t now) {
  const uint64_t hash = FlowHash64(key);
  Shard& s = ShardFor(hash);
  const size_t b0 = BucketIndex(hash);
  for (int b = 0; b < config_.max_probe_buckets; ++b) {
    Bucket& bucket = s.buckets[(b0 + b) & bucket_mask_];
    for (FlowEntry& e : bucket.slot) {
      if (!e.occupied()) {
        continue;
      }
      if (e.Matches(key)) {
        if (IdleExpired(e, now)) {
          EvictSlot(s, &e, &Shard::evict_idle);
          return nullptr;
        }
        e.last_seen = now;
        s.hits.fetch_add(1, std::memory_order_relaxed);
        probe_hist_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
        return &e;
      }
      if (IdleExpired(e, now)) {
        EvictSlot(s, &e, &Shard::evict_idle);
      }
    }
  }
  return nullptr;
}

bool FlowTable::Erase(const FlowKey& key) {
  const uint64_t hash = FlowHash64(key);
  Shard& s = ShardFor(hash);
  const size_t b0 = BucketIndex(hash);
  for (int b = 0; b < config_.max_probe_buckets; ++b) {
    Bucket& bucket = s.buckets[(b0 + b) & bucket_mask_];
    for (FlowEntry& e : bucket.slot) {
      if (e.occupied() && e.Matches(key)) {
        e = FlowEntry{};
        s.occupancy.fetch_sub(1, std::memory_order_relaxed);
        s.erases.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

void FlowTable::FindOrInsertLocked(
    const FlowKey& key, uint32_t now,
    const std::function<void(FlowEntry*, bool inserted)>& fn) {
  const uint64_t hash = FlowHash64(key);
  Shard& s = ShardFor(hash);
  while (s.lock.test_and_set(std::memory_order_acquire)) {
  }
  bool inserted = false;
  FlowEntry* e = FindOrInsertIn(s, key, hash, now, &inserted);
  fn(e, inserted);
  s.lock.clear(std::memory_order_release);
}

size_t FlowTable::SweepIdle(uint32_t now, size_t max_slots) {
  if (idle_timeout_.load(std::memory_order_relaxed) == 0 || max_slots == 0) {
    return 0;
  }
  size_t reclaimed = 0;
  size_t budget = std::max<size_t>(1, max_slots / shards_.size());
  for (auto& sp : shards_) {
    Shard& s = *sp;
    for (size_t i = 0; i < budget; ++i) {
      const size_t slot = s.sweep_cursor;
      s.sweep_cursor = (s.sweep_cursor + 1) % (buckets_per_shard_ * 2);
      FlowEntry& e = s.buckets[slot / 2].slot[slot % 2];
      if (e.occupied() && IdleExpired(e, now)) {
        EvictSlot(s, &e, &Shard::evict_idle);
        ++reclaimed;
      }
    }
  }
  return reclaimed;
}

void FlowTable::Clear() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    ClearShard(static_cast<int>(i));
  }
}

void FlowTable::ClearShard(int shard) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  for (Bucket& bucket : s.buckets) {
    for (FlowEntry& e : bucket.slot) {
      if (e.occupied()) {
        if (on_evict_) {
          on_evict_(e);
        }
        e = FlowEntry{};
        s.occupancy.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  s.sweep_cursor = 0;
}

int FlowTable::ShardOf(const FlowKey& key) const {
  return static_cast<int>(ShardIndex(FlowHash64(key)));
}

size_t FlowTable::ShardOccupancy(int shard) const {
  return shards_[static_cast<size_t>(shard)]->occupancy.load(std::memory_order_relaxed);
}

void FlowTable::ForEachInShard(int shard,
                               const std::function<void(const FlowEntry&)>& fn) const {
  const Shard& s = *shards_[static_cast<size_t>(shard)];
  for (const Bucket& bucket : s.buckets) {
    for (const FlowEntry& e : bucket.slot) {
      if (e.occupied()) {
        fn(e);
      }
    }
  }
}

FlowEntry* FlowTable::Restore(int shard, const FlowEntry& entry) {
  const FlowKey key = entry.key();
  const uint64_t hash = FlowHash64(key);
  RB_CHECK_MSG(ShardIndex(hash) == static_cast<size_t>(shard),
               "Restore: entry does not hash to the named shard");
  Shard& s = *shards_[static_cast<size_t>(shard)];
  bool inserted = false;
  FlowEntry* slot = FindOrInsertIn(s, key, hash, entry.last_seen, &inserted);
  if (slot == nullptr) {
    return nullptr;
  }
  slot->flags = entry.flags;
  slot->last_seen = entry.last_seen;
  slot->state0 = entry.state0;
  slot->state1 = entry.state1;
  s.replays.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

size_t FlowTable::occupancy() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->occupancy.load(std::memory_order_relaxed);
  }
  return static_cast<size_t>(total);
}

FlowTableStats FlowTable::stats() const {
  FlowTableStats out;
  for (const auto& s : shards_) {
    out.hits += s->hits.load(std::memory_order_relaxed);
    out.inserts += s->inserts.load(std::memory_order_relaxed);
    out.evict_idle += s->evict_idle.load(std::memory_order_relaxed);
    out.evict_watermark += s->evict_watermark.load(std::memory_order_relaxed);
    out.evict_full += s->evict_full.load(std::memory_order_relaxed);
    out.insert_fail += s->insert_fail.load(std::memory_order_relaxed);
    out.erases += s->erases.load(std::memory_order_relaxed);
    out.replays += s->replays.load(std::memory_order_relaxed);
  }
  return out;
}

int FlowTable::ProbeLengthPercentile(double p) const {
  uint64_t total = 0;
  for (const auto& c : probe_hist_) {
    total += c.load(std::memory_order_relaxed);
  }
  if (total == 0) {
    return 0;
  }
  const uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t b = 0; b < probe_hist_.size(); ++b) {
    seen += probe_hist_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      return static_cast<int>(b) + 1;
    }
  }
  return static_cast<int>(probe_hist_.size());
}

void FlowTable::AddHandlers(telemetry::HandlerRegistry* handlers,
                            const std::string& owner) {
  handlers->AddRead(owner + ".flows", [this] { return std::to_string(occupancy()); });
  handlers->AddRead(owner + ".occupancy",
                    [this] { return std::to_string(occupancy()); });
  handlers->AddRead(owner + ".capacity",
                    [this] { return std::to_string(capacity_slots()); });
  handlers->AddRead(owner + ".evictions",
                    [this] { return std::to_string(stats().evictions()); });
  handlers->AddRead(owner + ".replays",
                    [this] { return std::to_string(stats().replays); });
  handlers->AddRead(owner + ".insert_fail",
                    [this] { return std::to_string(stats().insert_fail); });
  handlers->AddRead(owner + ".probe_p99",
                    [this] { return std::to_string(ProbeLengthPercentile(0.99)); });
  handlers->AddRead(owner + ".hi", [this] { return std::to_string(hi_watermark()); });
  handlers->AddWrite(owner + ".hi",
                     [this](const std::string& value) -> telemetry::HandlerResult {
                       double hi = 0;
                       if (!telemetry::ParseHandlerDouble(value, &hi)) {
                         return telemetry::HandlerResult::Error("not a number");
                       }
                       if (!SetWatermarks(hi, lo_watermark())) {
                         return telemetry::HandlerResult::Error(
                             "watermarks must satisfy 0 < lo < hi <= 1");
                       }
                       return telemetry::HandlerResult::Ok();
                     });
  handlers->AddRead(owner + ".lo", [this] { return std::to_string(lo_watermark()); });
  handlers->AddWrite(owner + ".lo",
                     [this](const std::string& value) -> telemetry::HandlerResult {
                       double lo = 0;
                       if (!telemetry::ParseHandlerDouble(value, &lo)) {
                         return telemetry::HandlerResult::Error("not a number");
                       }
                       if (!SetWatermarks(hi_watermark(), lo)) {
                         return telemetry::HandlerResult::Error(
                             "watermarks must satisfy 0 < lo < hi <= 1");
                       }
                       return telemetry::HandlerResult::Ok();
                     });
  handlers->AddRead(owner + ".idle_ticks",
                    [this] { return std::to_string(idle_timeout()); });
  handlers->AddWrite(owner + ".idle_ticks",
                     [this](const std::string& value) -> telemetry::HandlerResult {
                       uint64_t ticks = 0;
                       if (!telemetry::ParseHandlerU64(value, &ticks) ||
                           ticks > UINT32_MAX) {
                         return telemetry::HandlerResult::Error(
                             "idle_ticks must be a u32");
                       }
                       set_idle_timeout(static_cast<uint32_t>(ticks));
                       return telemetry::HandlerResult::Ok();
                     });
}

void FlowTable::BindTelemetry(telemetry::MetricRegistry* registry,
                              const std::string& prefix, const std::string& name) {
  if (registry == nullptr) {
    return;
  }
  // The table keeps its own relaxed-atomic counters (they predate any
  // binding and feed the handler plane); the registry gets a snapshot
  // closure via gauges so every export path sees live values without
  // the hot path paying a second set of counter bumps.
  const std::string base = prefix + "flow/" + name;
  tele_.flows = registry->GetGauge(base + "/flows");
  tele_.evictions = registry->GetGauge(base + "/evictions");
  tele_.replays = registry->GetGauge(base + "/replays");
  tele_.insert_fail = registry->GetGauge(base + "/insert_fail");
  RefreshTelemetry();
}

void FlowTable::RefreshTelemetry() {
  if (tele_.flows == nullptr) {
    return;
  }
  const FlowTableStats s = stats();
  tele_.flows->Set(static_cast<double>(occupancy()));
  tele_.evictions->Set(static_cast<double>(s.evictions()));
  tele_.replays->Set(static_cast<double>(s.replays));
  tele_.insert_fail->Set(static_cast<double>(s.insert_fail));
}

}  // namespace rb
