#include "flow/scr.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace rb {

ScrLog::ScrLog(int shards, size_t checkpoint_period)
    : shards_(static_cast<size_t>(shards)), checkpoint_period_(checkpoint_period) {
  RB_CHECK(shards >= 1);
  RB_CHECK(checkpoint_period_ >= 1);
  for (auto& s : shards_) {
    s.tail.reserve(checkpoint_period_);
  }
}

void ScrLog::Append(int shard, const ScrRecord& r) {
  ShardLog& s = shards_[static_cast<size_t>(shard)];
  s.tail.push_back(r);
  ++appended_;
  tail_highwater_ = std::max(tail_highwater_, s.tail.size());
}

bool ScrLog::NeedsCheckpoint(int shard) const {
  return shards_[static_cast<size_t>(shard)].tail.size() >= checkpoint_period_;
}

void ScrLog::InstallCheckpoint(int shard, ScrSnapshot snap) {
  ShardLog& s = shards_[static_cast<size_t>(shard)];
  s.snapshot = std::move(snap);
  s.tail.clear();
  ++checkpoints_;
}

}  // namespace rb
