// The rb stateful plane's flow table (DESIGN.md §17).
//
// RouteBricks parallelizes *stateless* forwarding; stateful NFs (NAT,
// per-flow policing, connection tracking) need a per-flow state store
// that holds millions of concurrent flows without resizing, rehashing,
// or tail-exploding under overload. This table is built for that
// contract:
//
//  - Open addressing over cache-line buckets: entries are exactly 32
//    bytes, two per 64-byte bucket, so one probe touches one cache line
//    and a full probe window of B buckets touches exactly B lines.
//  - Bounded probe window: lookup/insert scans at most
//    `max_probe_buckets` consecutive buckets. There is no fallback scan
//    and no incremental resize — worst-case probe cost is a compile-time
//    style constant, which is what bounds p99 under million-flow churn.
//  - Graceful degradation instead of failure: when the window has no
//    free slot, or occupancy has crossed the high watermark, the
//    window's least-recently-seen entry is evicted (callback first, so
//    an owner like Nat can release its reverse mapping) and the slot is
//    reused. Overload therefore shows up as `evict_watermark` /
//    `evict_full` counters and bounded memory, never as OOM or an
//    unserviceable insert — and eviction by construction engages at the
//    watermark, strictly before the table is full.
//  - Idle reclamation: entries not touched for `idle_timeout` ticks are
//    reclaimed opportunistically during probes and by the budgeted
//    SweepIdle walk the control plane (or an element's housekeeping)
//    runs when occupancy sits above the low watermark.
//
// Sharding: the key's 64-bit hash picks a shard from its high bits and
// a bucket from its low bits. Shards are independent tables; in
// partitioned deployments (one shard per core / per node, the SCR
// arrangement) each shard has a single owner and no locking. The
// *shared-state* baseline of the ablation serializes cross-thread
// access per shard via FindOrInsertLocked — a spinlock per shard, the
// "one big table everyone locks" design the SCR paper argues against.
//
// Ticks: the table does not own a clock. Callers stamp `now` in any
// monotonically-increasing 32-bit unit (milliseconds in the elements,
// DES microseconds in the cluster plane); idle arithmetic uses
// wrap-safe unsigned subtraction.
#ifndef RB_FLOW_FLOW_TABLE_HPP_
#define RB_FLOW_FLOW_TABLE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "packet/flow.hpp"

namespace rb {

namespace telemetry {
class Gauge;
class HandlerRegistry;
class MetricRegistry;
}  // namespace telemetry

// One flow's state: the full 5-tuple key (open addressing stores keys,
// not signatures — a false-positive NAT hit would cross-wire flows), a
// last-seen tick for LRU/idle decisions, and two opaque state words the
// owning NF interprets (Nat: mapping word + reverse index; FlowPolicer:
// token bucket + refill tick). Exactly 32 bytes so two entries share a
// cache line.
struct FlowEntry {
  static constexpr uint8_t kOccupied = 1u << 0;
  static constexpr uint8_t kEstablished = 1u << 1;

  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;
  uint8_t flags = 0;
  uint16_t pad = 0;
  uint32_t last_seen = 0;
  uint32_t state1 = 0;
  uint64_t state0 = 0;

  bool occupied() const { return (flags & kOccupied) != 0; }
  bool established() const { return (flags & kEstablished) != 0; }
  FlowKey key() const { return FlowKey{src_ip, dst_ip, src_port, dst_port, protocol}; }
  bool Matches(const FlowKey& k) const {
    return src_ip == k.src_ip && dst_ip == k.dst_ip && src_port == k.src_port &&
           dst_port == k.dst_port && protocol == k.protocol;
  }
};
static_assert(sizeof(FlowEntry) == 32, "two FlowEntries per cache line");

struct FlowTableConfig {
  // Total slot budget across all shards; rounded up so each shard holds
  // a power-of-two number of buckets. 2^21 slots = 64 MiB: headroom for
  // a million-flow working set at comfortable load factor.
  size_t capacity = size_t{1} << 21;
  int shards = 8;              // power of two
  int max_probe_buckets = 8;   // probe window, in 2-entry buckets
  double hi_watermark = 0.85;  // occupancy fraction: LRU replacement above this
  double lo_watermark = 0.70;  // occupancy fraction: SweepIdle target
  uint32_t idle_timeout = 0;   // ticks; 0 disables idle reclamation
  // When the probe window is fully occupied by live entries: true
  // evicts the window LRU (graceful degradation), false fails the
  // insert (the caller counts a flow_table_full drop).
  bool evict_on_full = true;
};

struct FlowTableStats {
  uint64_t hits = 0;
  uint64_t inserts = 0;
  uint64_t evict_idle = 0;       // idle-timeout reclamation
  uint64_t evict_watermark = 0;  // LRU replacement above hi watermark
  uint64_t evict_full = 0;       // LRU replacement on a full probe window
  uint64_t insert_fail = 0;      // full window, eviction disabled
  uint64_t erases = 0;
  uint64_t replays = 0;          // entries restored by SCR replay
  uint64_t evictions() const { return evict_idle + evict_watermark + evict_full; }
};

class FlowTable {
 public:
  explicit FlowTable(const FlowTableConfig& config);

  // Called with the dying entry *before* its slot is reused, for every
  // eviction (idle, watermark, full) and for Clear/ClearShard. Owners
  // free derived state (Nat reverse mappings) here. Set before traffic.
  using EvictFn = std::function<void(const FlowEntry&)>;
  void set_on_evict(EvictFn fn) { on_evict_ = std::move(fn); }

  // Finds `key`, inserting a fresh entry when absent (stamped with
  // `now`, state words zeroed, kOccupied set). Touches last_seen on
  // hit. Returns nullptr only when the window is full and eviction is
  // disabled. `inserted` (optional) reports which path was taken.
  FlowEntry* FindOrInsert(const FlowKey& key, uint32_t now, bool* inserted = nullptr);

  // Lookup without insertion; touches last_seen on hit. Idle entries
  // are reclaimed on sight (an idle flow is not findable).
  FlowEntry* Find(const FlowKey& key, uint32_t now);

  // Removes `key` if present (no evict callback — erase is the owner
  // acting, not the table). Returns true when an entry was removed.
  bool Erase(const FlowKey& key);

  // Shared-state ablation variants: identical semantics under the
  // key-shard's spinlock. The returned pointer is only safe to use
  // inside `fn` in concurrent deployments, hence the visitor shape.
  void FindOrInsertLocked(const FlowKey& key, uint32_t now,
                          const std::function<void(FlowEntry*, bool inserted)>& fn);

  // Scans up to `max_slots` slots (continuing round-robin from the last
  // sweep) and reclaims idle entries. Returns entries reclaimed. No-op
  // when idle_timeout is 0.
  size_t SweepIdle(uint32_t now, size_t max_slots);

  void Clear();
  void ClearShard(int shard);

  // --- SCR support ---
  int ShardOf(const FlowKey& key) const;
  size_t ShardOccupancy(int shard) const;
  // Visits every occupied entry in `shard` (checkpoint snapshots).
  void ForEachInShard(int shard, const std::function<void(const FlowEntry&)>& fn) const;
  // Reinstalls a checkpointed/replayed entry into its home slot,
  // counting a replay. The entry's key must hash to `shard`.
  FlowEntry* Restore(int shard, const FlowEntry& e);

  size_t occupancy() const;
  size_t capacity_slots() const { return slots_per_shard_ * shards_.size(); }
  int shards() const { return static_cast<int>(shards_.size()); }
  int max_probe_buckets() const { return config_.max_probe_buckets; }
  double hi_watermark() const { return hi_watermark_.load(std::memory_order_relaxed); }
  double lo_watermark() const { return lo_watermark_.load(std::memory_order_relaxed); }
  uint32_t idle_timeout() const { return idle_timeout_.load(std::memory_order_relaxed); }
  void set_idle_timeout(uint32_t ticks) {
    idle_timeout_.store(ticks, std::memory_order_relaxed);
  }

  // Live-retunable watermarks; rejects lo >= hi or values outside
  // (0, 1]. Returns false (untouched) on invalid input.
  bool SetWatermarks(double hi, double lo);

  FlowTableStats stats() const;
  // Probe length (in buckets, 1-based) at the given percentile over all
  // FindOrInsert/Find probes so far; 0 when nothing was probed.
  int ProbeLengthPercentile(double p) const;

  // Registers "<owner>.flows" (live flow count), ".occupancy" (same —
  // the Click-style alias rb_top keys its [stateful] tag on),
  // ".capacity", ".evictions", ".replays", ".insert_fail",
  // ".probe_p99", and writable ".hi"/".lo" watermark knobs with
  // validation, plus ".idle_ticks". Handler bodies touch only relaxed
  // atomics and are control-thread safe.
  void AddHandlers(telemetry::HandlerRegistry* handlers, const std::string& owner);

  // Exports flow/eviction/replay gauges under "<prefix>flow/<name>/...".
  // Gauges mirror the table's internal counters; owners call
  // RefreshTelemetry() at their export points (batch boundaries,
  // Finish) so the registry reflects live values without per-op cost.
  void BindTelemetry(telemetry::MetricRegistry* registry, const std::string& prefix,
                     const std::string& name);
  void RefreshTelemetry();

 private:
  struct alignas(64) Bucket {
    FlowEntry slot[2];
  };

  struct Shard {
    std::vector<Bucket> buckets;
    std::atomic_flag lock;  // value-initialized clear (C++20)
    std::atomic<uint64_t> occupancy{0};
    size_t sweep_cursor = 0;
    // Single-writer in partitioned mode, control-thread read: relaxed.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> evict_idle{0};
    std::atomic<uint64_t> evict_watermark{0};
    std::atomic<uint64_t> evict_full{0};
    std::atomic<uint64_t> insert_fail{0};
    std::atomic<uint64_t> erases{0};
    std::atomic<uint64_t> replays{0};
  };

  FlowEntry* FindOrInsertIn(Shard& shard, const FlowKey& key, uint64_t hash, uint32_t now,
                            bool* inserted);
  bool IdleExpired(const FlowEntry& e, uint32_t now) const;
  void EvictSlot(Shard& shard, FlowEntry* e, std::atomic<uint64_t> Shard::* bucket_counter);
  Shard& ShardFor(uint64_t hash) { return *shards_[ShardIndex(hash)]; }
  size_t ShardIndex(uint64_t hash) const { return (hash >> 48) & shard_mask_; }
  size_t BucketIndex(uint64_t hash) const { return hash & bucket_mask_; }

  FlowTableConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  size_t bucket_mask_ = 0;
  size_t buckets_per_shard_ = 0;
  size_t slots_per_shard_ = 0;
  std::atomic<double> hi_watermark_{0};
  std::atomic<double> lo_watermark_{0};
  std::atomic<uint32_t> idle_timeout_{0};
  // hi watermark precomputed as a per-shard slot count (the hot path
  // compares integers, not fractions). Rewritten by SetWatermarks.
  std::atomic<uint64_t> hi_slots_per_shard_{0};
  EvictFn on_evict_;
  // Probe-length histogram: probe_hist_[b-1] counts probes that ended
  // in the b'th bucket of the window.
  std::vector<std::atomic<uint64_t>> probe_hist_;
  struct Tele {
    telemetry::Gauge* flows = nullptr;
    telemetry::Gauge* evictions = nullptr;
    telemetry::Gauge* replays = nullptr;
    telemetry::Gauge* insert_fail = nullptr;
  };
  Tele tele_;
};

}  // namespace rb

#endif  // RB_FLOW_FLOW_TABLE_HPP_
