// State-Compute Replication support (PAPERS.md, Xu et al.): instead of
// sharing flow state, each shard appends the per-packet *inputs* of its
// state updates to a log; a replica reconstructs the shard's exact state
// by re-executing the deterministic update function over that history.
// Replay cost is bounded by periodic checkpoints: every
// `checkpoint_period` appends the owner snapshots the shard's state and
// truncates the tail, so a failover replays at most one snapshot
// install plus `checkpoint_period` record re-executions.
//
// The log stores update inputs (flow id, tick, bytes), not state — that
// is the "compute replication" half of SCR: the replica does the same
// work the primary did, which is what makes the reconstructed mappings
// byte-identical instead of approximately-synchronized.
#ifndef RB_FLOW_SCR_HPP_
#define RB_FLOW_SCR_HPP_

#include <cstdint>
#include <vector>

#include "flow/flow_table.hpp"

namespace rb {

// One state-update input, as seen by the shard's update function.
struct ScrRecord {
  uint64_t flow_id = 0;
  uint32_t tick = 0;
  uint32_t bytes = 0;
};

// A shard checkpoint: the allocator cursor plus every live entry. The
// update function's only non-table inputs are the allocator and the
// record stream, so (snapshot, tail) fully determines shard state.
struct ScrSnapshot {
  uint64_t alloc_next = 0;
  std::vector<FlowEntry> entries;
};

class ScrLog {
 public:
  ScrLog(int shards, size_t checkpoint_period);

  void Append(int shard, const ScrRecord& r);
  // True when the shard's tail has reached the checkpoint period and the
  // owner should snapshot before the next append.
  bool NeedsCheckpoint(int shard) const;
  // Installs `snap` as the shard's recovery base and truncates the tail.
  void InstallCheckpoint(int shard, ScrSnapshot snap);

  const ScrSnapshot& snapshot(int shard) const { return shards_[shard].snapshot; }
  const std::vector<ScrRecord>& tail(int shard) const { return shards_[shard].tail; }
  size_t tail_size(int shard) const { return shards_[shard].tail.size(); }
  size_t checkpoint_period() const { return checkpoint_period_; }

  uint64_t appended() const { return appended_; }
  uint64_t checkpoints() const { return checkpoints_; }
  size_t tail_highwater() const { return tail_highwater_; }

 private:
  struct ShardLog {
    ScrSnapshot snapshot;
    std::vector<ScrRecord> tail;
  };

  std::vector<ShardLog> shards_;
  size_t checkpoint_period_;
  uint64_t appended_ = 0;
  uint64_t checkpoints_ = 0;
  size_t tail_highwater_ = 0;
};

}  // namespace rb

#endif  // RB_FLOW_SCR_HPP_
