#include "core/cluster_router.hpp"

#include <algorithm>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/dec_ip_ttl.hpp"
#include "click/elements/from_device.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "packet/headers.hpp"

namespace rb {

VlbRoute::VlbRoute(const LpmTable* table, DirectVlbRouter* vlb, uint16_t self, uint16_t num_nodes)
    : BatchElement(1, num_nodes),
      table_(table),
      vlb_(vlb),
      self_(self),
      num_nodes_(num_nodes),
      lanes_(num_nodes) {
  RB_CHECK(table != nullptr && vlb != nullptr);
  RB_CHECK(self < num_nodes);
}

void VlbRoute::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch bad;
  for (Packet* p : batch) {
    if (p->length() < EthernetView::kSize + Ipv4View::kMinSize) {
      bad.PushBack(p);
      continue;
    }
    Ipv4View ip{p->data() + EthernetView::kSize};
    uint32_t hop = table_->Lookup(ip.dst());
    if (hop == LpmTable::kNoRoute || hop > num_nodes_) {
      bad.PushBack(p);
      continue;
    }
    headers_processed_++;
    uint16_t dst_node = static_cast<uint16_t>(hop - 1);
    p->set_output_node(dst_node);

    // Encode the output node in the destination MAC so no later CPU has
    // to read the IP header (§6.1).
    EthernetView eth{p->data()};
    eth.set_dst(MacForNode(dst_node));

    if (dst_node == self_) {
      p->set_vlb_phase(VlbPhase::kDirect);
      lanes_[self_].PushBack(p);
      continue;
    }

    uint64_t flow_id = p->flow_id() != 0 ? p->flow_id() : p->flow_hash();
    VlbDecision decision = vlb_->Route(dst_node, flow_id, p->length(), p->arrival_time());
    uint16_t wire_to;
    if (decision.direct) {
      p->set_vlb_phase(VlbPhase::kDirect);
      wire_to = dst_node;
    } else {
      p->set_vlb_phase(VlbPhase::kPhase1);
      wire_to = decision.via;
    }
    lanes_[wire_to].PushBack(p);
  }
  batch.Clear();
  DropBatch(bad);
  for (uint16_t j = 0; j < num_nodes_; ++j) {
    OutputBatch(j, lanes_[j]);
  }
}

VlbAdmission::VlbAdmission(const LpmTable* table, AdmissionDrr* drr, uint16_t num_nodes)
    : BatchElement(1, 1), table_(table), drr_(drr), num_nodes_(num_nodes) {
  RB_CHECK(table != nullptr && drr != nullptr);
}

void VlbAdmission::BindTelemetry(telemetry::MetricRegistry* registry,
                                 telemetry::PathTracer* tracer, const std::string& prefix) {
  Element::BindTelemetry(registry, tracer, prefix);
  if (telemetry::Enabled() && registry != nullptr) {
    tele_admission_drops_ =
        registry->GetCounter(prefix + "elem/" + name() + "/drops/admission");
  }
}

size_t VlbAdmission::MonitoredDepth() const {
  size_t depth = 0;
  for (const QueueElement* q : watched_) {
    depth = std::max(depth, q->size());
  }
  return depth;
}

void VlbAdmission::PushBatch(int /*port*/, PacketBatch& batch) {
  PacketBatch pass;
  PacketBatch deny;
  const size_t depth = MonitoredDepth();
  for (Packet* p : batch) {
    // Resolve the output node the same way VlbRoute will; packets it
    // cannot resolve pass through so VlbRoute's bad-packet path (not the
    // admission bucket) accounts them.
    uint16_t dst = num_nodes_;
    if (p->length() >= EthernetView::kSize + Ipv4View::kMinSize) {
      Ipv4View ip{p->data() + EthernetView::kSize};
      uint32_t hop = table_->Lookup(ip.dst());
      if (hop != LpmTable::kNoRoute && hop <= num_nodes_) {
        dst = static_cast<uint16_t>(hop - 1);
      }
    }
    if (dst < num_nodes_ && !drr_->Admit(dst, p->length(), p->arrival_time(), depth)) {
      deny.PushBack(p);
    } else {
      pass.PushBack(p);
    }
  }
  batch.Clear();
  if (!deny.empty()) {
    admission_drops_ += deny.size();
    if (tele_admission_drops_ != nullptr) {
      tele_admission_drops_->Add(deny.size());
    }
    DropBatch(deny);
  }
  OutputBatch(0, pass);
}

VlbSteer::VlbSteer(uint16_t self, uint16_t queue_node)
    : BatchElement(1, 2), self_(self), queue_node_(queue_node) {}

void VlbSteer::PushBatch(int /*port*/, PacketBatch& batch) {
  steered_ += batch.size();
  // The rx queue index IS the output node — no header access needed, and
  // the whole burst shares one phase because the queue decides it.
  const bool local = queue_node_ == self_;
  const VlbPhase phase = local ? VlbPhase::kDirect : VlbPhase::kPhase2;
  for (Packet* p : batch) {
    p->set_output_node(queue_node_);
    p->set_vlb_phase(phase);
  }
  OutputBatch(local ? 0 : 1, batch);
}

FunctionalCluster::FunctionalCluster(const FunctionalClusterConfig& config)
    : config_(config), health_(config.num_nodes) {
  RB_CHECK(config.num_nodes >= 2);
  pool_ = std::make_unique<PacketPool>(config.pool_packets);
  uint16_t n = config.num_nodes;
  nodes_.resize(n);
  vlb_route_.resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    VlbConfig vc = config.vlb;
    vc.num_nodes = n;
    vc.seed = config.seed ^ (0xabcdULL * (i + 1));
    vlb_.push_back(std::make_unique<DirectVlbRouter>(vc, i));
    vlb_.back()->set_health(&health_);
    if (config.admission.enabled) {
      admission_.push_back(std::make_unique<AdmissionDrr>(config.admission, n));
      admission_.back()->set_health(&health_);
    }
  }
  if (config.admission.enabled) {
    vlb_admission_.resize(n);
  }
  for (uint16_t i = 0; i < n; ++i) {
    BuildNode(i);
  }
  for (uint16_t i = 0; i < n; ++i) {
    Node& node = nodes_[i];
    if (config.registry != nullptr || config.tracer != nullptr) {
      std::string prefix = Format("node%u/", i);
      node.graph->BindTelemetry(config.registry, config.tracer, prefix);
      for (size_t p = 0; p < node.ports.size(); ++p) {
        node.ports[p]->BindTelemetry(config.registry, prefix + Format("nic/port%zu/", p));
      }
    }
    node.graph->Initialize();
  }
}

uint32_t FunctionalCluster::AddressForNode(uint16_t node) const {
  // 10.<node>.0.1 — covered by the /16 installed per node.
  return (10u << 24) | (static_cast<uint32_t>(node) << 16) | 1u;
}

int FunctionalCluster::PortIndexFor(uint16_t node, uint16_t peer) const {
  RB_CHECK(node != peer);
  return 1 + (peer < node ? peer : peer - 1);
}

void FunctionalCluster::BuildNode(uint16_t self) {
  Node& node = nodes_[self];
  node.graph = std::make_unique<Router>();
  uint16_t n = config_.num_nodes;

  // Routing table: one /16 per output node plus filler routes that also
  // resolve to valid nodes (keeps the table realistically populated).
  node.table = std::make_unique<Dir24_8>();
  for (uint16_t j = 0; j < n; ++j) {
    node.table->Insert((10u << 24) | (static_cast<uint32_t>(j) << 16), 16, j + 1u);
  }
  Rng rng(config_.seed + self);
  for (size_t k = 0; k < config_.routes; ++k) {
    uint32_t prefix = (192u << 24) | (static_cast<uint32_t>(rng.Next()) & 0x00ffff00u);
    node.table->Insert(prefix, 24, 1 + static_cast<uint32_t>(rng.NextBounded(n)));
  }

  // Port 0: external. Ports 1..n-1: internal, MAC-steered, one rx queue
  // per output node.
  {
    NicConfig nc;
    nc.num_rx_queues = 1;
    nc.num_tx_queues = 1;
    nc.steering = SteeringMode::kRss;
    nc.ring_entries = config_.queue_capacity;
    node.ports.push_back(std::make_unique<NicPort>(nc));
  }
  for (uint16_t peer = 0; peer < n; ++peer) {
    if (peer == self) {
      continue;
    }
    NicConfig nc;
    nc.num_rx_queues = n;
    nc.num_tx_queues = 1;
    nc.steering = SteeringMode::kMacTable;
    nc.ring_entries = config_.queue_capacity;
    auto port = std::make_unique<NicPort>(nc);
    for (uint16_t out = 0; out < n; ++out) {
      port->steering().AddMacRule(MacForNode(out), out);
    }
    node.ports.push_back(std::move(port));
  }

  Router& g = *node.graph;

  // Helper lambdas to build transmit legs.
  auto make_leg = [&](NicPort* out_port) -> QueueElement* {
    auto* queue = g.Add<QueueElement>(config_.queue_capacity);
    auto* to = g.Add<ToDevice>(out_port, 0, 32, -1);
    g.Connect(queue, 0, to, 0);
    return queue;
  };

  // External ingress: full header processing happens only here.
  auto* from_ext = g.Add<FromDevice>(node.ports[0].get(), 0, 32, -1);
  auto* check = g.Add<CheckIpHeader>();
  auto* ttl = g.Add<DecIpTtl>();
  auto* route = g.Add<VlbRoute>(node.table.get(), vlb_[self].get(), self, n);
  g.Connect(from_ext, 0, check, 0);
  g.Connect(check, 0, ttl, 0);
  if (config_.admission.enabled) {
    auto* adm = g.Add<VlbAdmission>(node.table.get(), admission_[self].get(), n);
    g.Connect(ttl, 0, adm, 0);
    g.Connect(adm, 0, route, 0);
    vlb_admission_[self] = adm;
  } else {
    g.Connect(ttl, 0, route, 0);
  }
  vlb_route_[self] = route;
  for (uint16_t j = 0; j < n; ++j) {
    NicPort* out = j == self ? node.ports[0].get()
                             : node.ports[static_cast<size_t>(PortIndexFor(self, j))].get();
    QueueElement* leg = make_leg(out);
    g.Connect(route, j, leg, 0);
    if (config_.admission.enabled) {
      vlb_admission_[self]->WatchQueue(leg);
    }
  }

  // Internal ingress: per (port, MAC-steered queue) forwarding without
  // header processing.
  for (uint16_t peer = 0; peer < n; ++peer) {
    if (peer == self) {
      continue;
    }
    NicPort* in_port = node.ports[static_cast<size_t>(PortIndexFor(self, peer))].get();
    for (uint16_t qnode = 0; qnode < n; ++qnode) {
      auto* from = g.Add<FromDevice>(in_port, qnode, 32, -1);
      auto* steer = g.Add<VlbSteer>(self, qnode);
      g.Connect(from, 0, steer, 0);
      if (qnode == self) {
        g.Connect(steer, 0, make_leg(node.ports[0].get()), 0);
      } else if (qnode != peer) {
        // Phase 2: forward toward the output node. (qnode == peer would
        // mean bouncing the packet back where it came from; VLB never
        // does that, so that output stays unwired and would count drops.)
        NicPort* out = node.ports[static_cast<size_t>(PortIndexFor(self, qnode))].get();
        g.Connect(steer, 1, make_leg(out), 0);
      }
    }
  }
}

void FunctionalCluster::InjectExternal(uint16_t src, Packet* p, SimTime t) {
  RB_CHECK(src < config_.num_nodes);
  now_ = t > now_ ? t : now_;
  nodes_[src].ports[0]->Deliver(p, t);
}

size_t FunctionalCluster::PumpWires() {
  size_t moved = 0;
  Packet* burst[64];
  uint16_t n = config_.num_nodes;
  for (uint16_t i = 0; i < n; ++i) {
    for (uint16_t peer = 0; peer < n; ++peer) {
      if (peer == i) {
        continue;
      }
      NicPort& tx = *nodes_[i].ports[static_cast<size_t>(PortIndexFor(i, peer))];
      NicPort& rx = *nodes_[peer].ports[static_cast<size_t>(PortIndexFor(peer, i))];
      size_t got;
      while ((got = tx.DrainTx(burst, std::size(burst))) > 0) {
        for (size_t k = 0; k < got; ++k) {
          // Wire latency is negligible at functional scope; stamp a
          // monotonically advancing arrival time.
          now_ += 1e-9;
          rx.Deliver(burst[k], now_);
          wire_packets_++;
        }
        moved += got;
      }
    }
  }
  return moved;
}

size_t FunctionalCluster::RunUntilIdle(size_t max_sweeps) {
  size_t total = 0;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    size_t moved = 0;
    for (auto& node : nodes_) {
      for (auto& port : node.ports) {
        port->FlushAllStaged();
      }
      moved += node.graph->RunTasksOnce();
    }
    moved += PumpWires();
    total += moved;
    if (moved == 0) {
      break;
    }
  }
  return total;
}

size_t FunctionalCluster::DrainExternal(uint16_t node, Packet** out, size_t max) {
  return nodes_[node].ports[0]->DrainTx(out, max);
}

}  // namespace rb
