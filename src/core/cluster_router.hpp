// FunctionalCluster: a real (packet-level, Click-graph) RB4-style cluster,
// complementing the calibrated queueing simulator in rb::cluster.
//
// Each node is a Click element graph around multi-queue NicPorts, wired to
// its peers by software "wires". The implementation follows §6.1 exactly:
//
//  * At the input node, the packet's headers are processed ONCE: lookup of
//    the destination's output node, TTL/checksum update, then the VlbRoute
//    element picks direct-vs-balanced (Direct VLB + flowlets) and encodes
//    the output node in the destination MAC (MacForNode).
//  * Internal ports steer received frames to rx queues BY MAC
//    (SteeringMode::kMacTable, queue index == output node), so at transit
//    and output nodes a core learns the packet's output node purely from
//    the queue it polled — VlbSteer never reads the IP header.
//
// VlbRoute and VlbSteer are the "only two new Click elements" the RB4
// implementation needed (§8); everything else is standard-element reuse.
#ifndef RB_CORE_CLUSTER_ROUTER_HPP_
#define RB_CORE_CLUSTER_ROUTER_HPP_

#include <memory>
#include <vector>

#include "click/element.hpp"
#include "click/router.hpp"
#include "cluster/admission.hpp"
#include "cluster/reorder.hpp"
#include "cluster/vlb.hpp"
#include "core/router_config.hpp"
#include "lookup/dir24_8.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"

namespace rb {

// Input-node element: full header processing + VLB path choice + MAC
// encoding. Output j sends toward node j (the wire port); output self
// delivers locally.
class VlbRoute : public BatchElement {
 public:
  VlbRoute(const LpmTable* table, DirectVlbRouter* vlb, uint16_t self, uint16_t num_nodes);
  const char* class_name() const override { return "VlbRoute"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t headers_processed() const { return headers_processed_; }

 private:
  const LpmTable* table_;
  DirectVlbRouter* vlb_;
  uint16_t self_;
  uint16_t num_nodes_;
  uint64_t headers_processed_ = 0;
  std::vector<PacketBatch> lanes_;  // per-wire fan-out scratch
};

class QueueElement;

// Fair ingress admission on the Click graph (the element-graph twin of
// the DES integration): sits between header processing and VlbRoute at
// the external ingress, resolves each packet's output node with the same
// LPM table VlbRoute uses, and asks the node's AdmissionDrr for a
// verdict. The believed-capacity signal combines HealthView (via the
// DRR's live-port shares) with queue-depth telemetry from the transmit
// legs it watches (WatchQueue). Rejects are counted under
// "elem/<name>/drops/admission" and dropped here, so the mesh never
// carries them.
class VlbAdmission : public BatchElement {
 public:
  VlbAdmission(const LpmTable* table, AdmissionDrr* drr, uint16_t num_nodes);
  const char* class_name() const override { return "VlbAdmission"; }
  void PushBatch(int port, PacketBatch& batch) override;

  // Adds `q` to the depth-monitored set (the ingress transmit legs); the
  // max depth over the set is the DRR's engagement signal.
  void WatchQueue(const QueueElement* q) { watched_.push_back(q); }

  void BindTelemetry(telemetry::MetricRegistry* registry, telemetry::PathTracer* tracer,
                     const std::string& prefix = "") override;

  uint64_t admission_drops() const { return admission_drops_; }
  const AdmissionDrr& drr() const { return *drr_; }

 private:
  size_t MonitoredDepth() const;

  const LpmTable* table_;
  AdmissionDrr* drr_;
  uint16_t num_nodes_;
  std::vector<const QueueElement*> watched_;
  uint64_t admission_drops_ = 0;
  telemetry::Counter* tele_admission_drops_ = nullptr;
};

// Transit/output-node element for one MAC-steered rx queue: stamps the
// output node implied by the queue and forwards without header reads.
// Output 0: local external delivery; output 1: toward the output node.
class VlbSteer : public BatchElement {
 public:
  VlbSteer(uint16_t self, uint16_t queue_node);
  const char* class_name() const override { return "VlbSteer"; }
  void PushBatch(int port, PacketBatch& batch) override;

  uint64_t steered() const { return steered_; }

 private:
  uint16_t self_;
  uint16_t queue_node_;
  uint64_t steered_ = 0;
};

struct FunctionalClusterConfig {
  uint16_t num_nodes = 4;
  size_t pool_packets = 1 << 16;
  size_t queue_capacity = 4096;
  size_t routes = 4096;         // per-node routing table entries
  VlbConfig vlb;                // direct VLB + flowlet settings
  uint64_t seed = 5;

  // Fair ingress admission (admission.hpp): when enabled, each node gets
  // a VlbAdmission element between header processing and VlbRoute,
  // watching that node's external-ingress transmit-leg queues.
  AdmissionConfig admission;

  // Optional telemetry sinks (must outlive the cluster). Every node graph
  // and NIC port is bound under "node<i>/..." names; the tracer records
  // sampled packet paths across node boundaries (the trace handle rides
  // the packet over the software wires).
  telemetry::MetricRegistry* registry = nullptr;
  telemetry::PathTracer* tracer = nullptr;
};

class FunctionalCluster {
 public:
  explicit FunctionalCluster(const FunctionalClusterConfig& config);

  // Injects an external frame at node `src` at simulated time `t`. The
  // IPv4 destination decides the output node via the routing table; use
  // AddressForNode to target a node.
  void InjectExternal(uint16_t src, Packet* p, SimTime t);

  // An IPv4 destination address guaranteed to route to `node`.
  uint32_t AddressForNode(uint16_t node) const;

  PacketPool& pool() { return *pool_; }

  // Runs all node graphs and wires until quiescent; returns packets moved.
  size_t RunUntilIdle(size_t max_sweeps = 100000);

  // Drains externally delivered frames at `node`; caller owns them.
  size_t DrainExternal(uint16_t node, Packet** out, size_t max);

  const VlbRoute& vlb_route(uint16_t node) const { return *vlb_route_[node]; }
  DirectVlbRouter& vlb(uint16_t node) { return *vlb_[node]; }
  // Ingress admission state; null unless config.admission.enabled.
  const VlbAdmission* vlb_admission(uint16_t node) const {
    return vlb_admission_.empty() ? nullptr : vlb_admission_[node];
  }
  // The node's Click graph (for inspection, e.g. walking elements).
  Router& node_graph(uint16_t node) { return *nodes_[node].graph; }
  uint64_t wire_packets() const { return wire_packets_; }

  // Believed node/link liveness, shared by every node's VLB router. The
  // functional cluster has no failure mechanics of its own (the DES
  // models those); flipping beliefs here exercises failure-aware path
  // selection on the real Click graphs. Invalidate pinned flowlets via
  // DirectVlbRouter::OnNodeUnhealthy/OnLinkUnhealthy per node.
  HealthView& health() { return health_; }

 private:
  struct Node {
    std::unique_ptr<Router> graph;
    std::vector<std::unique_ptr<NicPort>> ports;  // [0] = ext, then peers
    std::unique_ptr<Dir24_8> table;
  };

  int PortIndexFor(uint16_t node, uint16_t peer) const;
  void BuildNode(uint16_t i);
  size_t PumpWires();

  FunctionalClusterConfig config_;
  HealthView health_;
  std::unique_ptr<PacketPool> pool_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<DirectVlbRouter>> vlb_;
  std::vector<std::unique_ptr<AdmissionDrr>> admission_;  // empty = disabled
  std::vector<VlbRoute*> vlb_route_;
  std::vector<VlbAdmission*> vlb_admission_;
  SimTime now_ = 0;
  uint64_t wire_packets_ = 0;
};

}  // namespace rb

#endif  // RB_CORE_CLUSTER_ROUTER_HPP_
