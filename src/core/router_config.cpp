#include "core/router_config.hpp"

#include "common/log.hpp"
#include "packet/batch.hpp"

namespace rb {

void ValidateConfig(const SingleServerConfig& config) {
  RB_CHECK_MSG(config.num_ports >= 1, "need at least one port");
  RB_CHECK_MSG(config.queues_per_port >= 1, "need at least one queue per port");
  RB_CHECK_MSG(config.cores >= 1, "need at least one core");
  // §4.2: with q >= cores, every core can own a private rx and tx queue on
  // every port, satisfying both the one-core-per-queue and
  // one-core-per-packet rules. Fewer queues than cores is allowed (cores
  // then share ports round-robin) but warned about.
  if (config.queues_per_port < config.cores) {
    RB_LOG_WARN("queues_per_port (%d) < cores (%d): some cores will share queues",
                config.queues_per_port, config.cores);
  }
  RB_CHECK_MSG(config.kp >= 1 && config.kn >= 1, "batch factors must be >= 1");
  RB_CHECK_MSG(config.graph_batch <= PacketBatch::kCapacity,
               "graph_batch exceeds PacketBatch capacity");
  RB_CHECK_MSG(config.pool_packets >= 1024, "packet pool too small");
}

}  // namespace rb
