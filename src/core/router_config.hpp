// Top-level RouteBricks configuration: what a downstream user sets up.
#ifndef RB_CORE_ROUTER_CONFIG_HPP_
#define RB_CORE_ROUTER_CONFIG_HPP_

#include <cstdint>

#include "crypto/esp.hpp"
#include "lookup/table_gen.hpp"
#include "workload/workload.hpp"

namespace rb {

// Selects the LPM structure backing the IP-routing application's table.
enum class LpmKind { kDir24_8, kRadixTrie };

// Configuration for one RouteBricks server (a "linecard" of the cluster,
// or a standalone software router).
struct SingleServerConfig {
  int num_ports = 4;          // NIC ports on this server
  int queues_per_port = 8;    // rx/tx queues per port (>= cores for rule 1)
  int cores = 8;              // worker cores for static task assignment
  App app = App::kIpRouting;  // packet-processing application
  uint16_t kp = 32;           // poll-driven batch
  uint16_t kn = 16;           // NIC-driven batch
  // Graph-level batch: the largest PacketBatch FromDevice pushes into the
  // element chain. 0 (default) = no extra split, the whole kp poll burst
  // travels as one batch. Smaller values re-chunk the burst — the knob the
  // Table 1 batching sweep varies independently of kp/kn.
  uint16_t graph_batch = 0;
  size_t pool_packets = 65536;
  size_t queue_capacity = 1024;
  // Compiled packet programs (DESIGN.md §16): when set, the graph build
  // runs Router::CompilePrograms, collapsing classification chains
  // (CheckIPHeader, classifiers) into CompiledClassifier elements. The
  // interpreted path stays the reference; benches default this on.
  bool compile_programs = false;
  // Stateful NAT leg (DESIGN.md §17): when set, the IP-routing graph
  // inserts a source-NAPT Nat element (backed by a watermark-evicting
  // FlowTable) between header check and TTL decrement on every
  // (port, queue) chain. Off by default — the baseline graphs stay
  // stateless; ip_router's --stateful flag and the control-socket smoke
  // test flip it on to exercise the live `.flows`/`.hi`/`.lo` handlers.
  bool stateful_nat = false;
  size_t nat_capacity = 4096;  // flow-table slots (== mapping ports) per Nat
  // IP routing.
  TableGenConfig table;
  // Which LPM structure backs the routing table: the flat DIR-24-8 is the
  // data-plane default; the radix trie is the reference implementation
  // kept selectable for differential testing.
  LpmKind lpm = LpmKind::kDir24_8;
  // IPsec.
  EspConfig esp;

  uint64_t seed = 1;
};

// Validates invariants a user configuration must satisfy; RB_CHECKs on
// violation (programmer error, not data-plane condition).
void ValidateConfig(const SingleServerConfig& config);

}  // namespace rb

#endif  // RB_CORE_ROUTER_CONFIG_HPP_
