#include "core/single_server_router.hpp"

#include <string>

#include "click/elements/check_ip_header.hpp"
#include "click/elements/dec_ip_ttl.hpp"
#include "click/elements/from_device.hpp"
#include "click/elements/ip_lookup.hpp"
#include "click/elements/ipsec.hpp"
#include "click/elements/nat.hpp"
#include "click/elements/queue.hpp"
#include "click/elements/to_device.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "lookup/radix_trie.hpp"

namespace rb {

SingleServerRouter::SingleServerRouter(const SingleServerConfig& config) : config_(config) {
  ValidateConfig(config);
  pool_ = std::make_unique<PacketPool>(config.pool_packets);
  for (int p = 0; p < config.num_ports; ++p) {
    NicConfig nc;
    nc.num_rx_queues = static_cast<uint16_t>(config.queues_per_port);
    nc.num_tx_queues = static_cast<uint16_t>(config.queues_per_port);
    nc.kn = config.kn;
    nc.steering = SteeringMode::kRss;
    ports_.push_back(std::make_unique<NicPort>(nc));
  }
  if (config.app == App::kIpRouting) {
    if (config.lpm == LpmKind::kRadixTrie) {
      table_ = std::make_unique<RadixTrie>();
    } else {
      table_ = std::make_unique<Dir24_8>();
    }
    TableGenConfig tg = config.table;
    tg.num_next_hops = static_cast<uint32_t>(config.num_ports);
    table_->InsertAll(GenerateRoutingTable(tg));
  }
}

void SingleServerRouter::BuildGraph() {
  const int num_ports = config_.num_ports;
  const int queues = config_.queues_per_port;

  for (int in_port = 0; in_port < num_ports; ++in_port) {
    for (int q = 0; q < queues; ++q) {
      // Core assignment: queue q of every port belongs to core q % cores —
      // the static thread-to-core mapping of §4.2.
      int core = q % config_.cores;
      auto* from = router_.Add<FromDevice>(&port(in_port), static_cast<uint16_t>(q), config_.kp,
                                           core, config_.graph_batch);
      auto* check = router_.Add<CheckIpHeader>();
      router_.Connect(from, 0, check, 0);

      // Build the per-output transmit legs: each (in_port, q) chain has a
      // private Queue + ToDevice per output port, so no tx queue is ever
      // shared across cores (rule 1) and each packet stays on one core
      // (rule 2).
      std::vector<Element*> legs;
      for (int out_port = 0; out_port < num_ports; ++out_port) {
        auto* queue = router_.Add<QueueElement>(config_.queue_capacity);
        // ToDevice drains up to kn per transmit — the NIC-driven batch
        // size, matching the descriptor-batching axis of Table 1.
        auto* to = router_.Add<ToDevice>(&port(out_port), static_cast<uint16_t>(q),
                                         config_.kn, core);
        // All legs draining to the same output port share one
        // "lat/port<N>" latency histogram — per-port ingress-to-egress
        // percentiles regardless of which (in_port, q) chain carried the
        // packet.
        to->set_port_label(out_port);
        router_.Connect(queue, 0, to, 0);
        legs.push_back(queue);
      }

      switch (config_.app) {
        case App::kMinimalForwarding: {
          // Blind forwarding to the pre-determined output (§4.2's toy
          // configuration): port i -> port (i+1) % P.
          router_.Connect(check, 0, legs[static_cast<size_t>((in_port + 1) % num_ports)], 0);
          break;
        }
        case App::kIpRouting: {
          Element* upstream = check;
          if (config_.stateful_nat) {
            // Outbound-only NAPT leg: input/output 0 sit in the chain;
            // the reply side (port 1) stays unwired — this graph has no
            // outside->inside path. Each chain owns its table, so the
            // handler plane exposes one `.flows` surface per Nat.
            NatOptions nat_opt;
            nat_opt.capacity = config_.nat_capacity;
            auto* nat = router_.Add<Nat>(nat_opt);
            router_.Connect(check, 0, nat, 0);
            upstream = nat;
          }
          auto* ttl = router_.Add<DecIpTtl>();
          auto* lookup = router_.Add<IpLookup>(table_.get(), num_ports);
          router_.Connect(upstream, 0, ttl, 0);
          router_.Connect(ttl, 0, lookup, 0);
          for (int out_port = 0; out_port < num_ports; ++out_port) {
            router_.Connect(lookup, out_port, legs[static_cast<size_t>(out_port)], 0);
          }
          break;
        }
        case App::kIpsec: {
          auto* esp = router_.Add<IpsecEncrypt>(config_.esp);
          router_.Connect(check, 0, esp, 0);
          router_.Connect(esp, 0, legs[static_cast<size_t>((in_port + 1) % num_ports)], 0);
          break;
        }
      }
    }
  }
}

void SingleServerRouter::EnableTelemetry(telemetry::MetricRegistry* registry,
                                         telemetry::PathTracer* tracer) {
  RB_CHECK_MSG(!initialized_, "EnableTelemetry must precede Initialize");
  tele_registry_ = registry;
  tele_tracer_ = tracer;
  for (size_t i = 0; i < ports_.size(); ++i) {
    ports_[i]->BindTelemetry(registry, Format("nic/port%zu/", i));
  }
}

void SingleServerRouter::Initialize() {
  RB_CHECK_MSG(!initialized_, "Initialize called twice");
  initialized_ = true;
  BuildGraph();
  if (config_.compile_programs) {
    // Collapse classification chains before telemetry binds and elements
    // initialize, so the compiled elements get counters and the pollers
    // cache post-rewire backpressure boundaries.
    router_.CompilePrograms();
  }
  if (tele_registry_ != nullptr || tele_tracer_ != nullptr) {
    router_.BindTelemetry(tele_registry_, tele_tracer_);
  }
  router_.Initialize();
}

void SingleServerRouter::DeliverFrame(int p, Packet* frame, SimTime t) {
  RB_CHECK(p >= 0 && p < config_.num_ports);
  frame->set_input_port(static_cast<uint16_t>(p));
  port(p).Deliver(frame, t);
}

void SingleServerRouter::DeliverBatch(int p, PacketBatch* batch, SimTime t) {
  RB_CHECK(p >= 0 && p < config_.num_ports);
  for (Packet* frame : *batch) {
    frame->set_input_port(static_cast<uint16_t>(p));
  }
  port(p).DeliverBatch(batch, t);
}

void SingleServerRouter::AddHandlers(telemetry::HandlerRegistry* handlers) {
  PacketPool* pool = pool_.get();
  handlers->AddRead("pool.capacity", [pool] { return std::to_string(pool->capacity()); });
  handlers->AddRead("pool.available", [pool] { return std::to_string(pool->available()); });
  handlers->AddRead("pool.in_use", [pool] { return std::to_string(pool->in_use()); });
  handlers->AddRead("pool.alloc_failures",
                    [pool] { return std::to_string(pool->alloc_failures()); });
}

size_t SingleServerRouter::Step() {
  RB_CHECK_MSG(initialized_, "router not initialized");
  for (auto& nic : ports_) {
    nic->FlushAllStaged();
  }
  return router_.RunTasksOnce();
}

size_t SingleServerRouter::RunUntilIdle() {
  size_t total = 0;
  while (true) {
    size_t moved = Step();
    total += moved;
    if (moved == 0) {
      break;
    }
  }
  return total;
}

size_t SingleServerRouter::DrainPort(int p, Packet** out, size_t max) {
  return port(p).DrainTx(out, max);
}

uint64_t SingleServerRouter::total_tx_packets() const {
  uint64_t total = 0;
  for (const auto& nic : ports_) {
    total += nic->tx_counters().packets;
  }
  return total;
}

uint64_t SingleServerRouter::total_rx_packets() const {
  uint64_t total = 0;
  for (const auto& nic : ports_) {
    total += nic->rx_counters().packets;
  }
  return total;
}

}  // namespace rb
