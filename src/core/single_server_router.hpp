// SingleServerRouter: a complete RouteBricks server built from the
// library's pieces — multi-queue NICs, the Click-style element graph, and
// one of the three evaluation applications — following the §4.2 rules:
// every (port, queue) pair is polled by exactly one core's FromDevice,
// every packet is processed start-to-finish on that core's element chain,
// and every tx queue is written by exactly one core.
//
// Element graph per (input port, queue q):
//   FromDevice(port, q) -> CheckIPHeader -> <app> -> per-output Queue ->
//   ToDevice(output port, q)
// where <app> is: nothing (minimal forwarding, output = (port+1) % P),
// DecIPTTL -> IPLookup (IP routing, output from the 256 K-entry table), or
// IPsecEncrypt (tunnel to output (port+1) % P).
#ifndef RB_CORE_SINGLE_SERVER_ROUTER_HPP_
#define RB_CORE_SINGLE_SERVER_ROUTER_HPP_

#include <memory>
#include <vector>

#include "click/elements/misc.hpp"
#include "click/router.hpp"
#include "click/scheduler.hpp"
#include "core/router_config.hpp"
#include "lookup/dir24_8.hpp"
#include "netdev/nic.hpp"
#include "packet/pool.hpp"
#include "telemetry/handler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rb {

class SingleServerRouter {
 public:
  explicit SingleServerRouter(const SingleServerConfig& config);

  // Builds and initializes the element graph. Call once.
  void Initialize();

  // Attaches telemetry before the graph runs: per-element and per-task
  // registry counters, NIC port counters/ring high-water gauges under
  // "nic/port<i>/", and (when `tracer` is non-null) sampled packet-path
  // tracing from FromDevice to ToDevice. Call before Initialize().
  void EnableTelemetry(telemetry::MetricRegistry* registry,
                       telemetry::PathTracer* tracer = nullptr);

  NicPort& port(int i) { return *ports_[static_cast<size_t>(i)]; }
  PacketPool& pool() { return *pool_; }
  Router& graph() { return router_; }
  // The routing table behind the LpmTable interface (Dir24_8 by default,
  // the reference trie when config.lpm selects it).
  const LpmTable& table() const { return *table_; }
  // Downcast for Dir24_8-specific introspection (memory footprint,
  // segment counts); nullptr when another structure backs the table.
  const Dir24_8* dir_table() const { return dynamic_cast<const Dir24_8*>(table_.get()); }

  // Injects a frame into `port` (as the wire would) at simulated time t.
  void DeliverFrame(int port, Packet* p, SimTime t);

  // Batch variant: injects every packet in `batch` into `port` (ownership
  // transfers; the batch is left empty). The bulk-injection entry point —
  // a whole burst crosses into the NIC without re-entering the per-packet
  // path.
  void DeliverBatch(int port, PacketBatch* batch, SimTime t);

  // Exports the shared packet pool's state as read handlers
  // ("pool.capacity/available/in_use/alloc_failures"), so pool pressure is
  // visible through the control socket alongside the element handlers.
  void AddHandlers(telemetry::HandlerRegistry* handlers);

  // Runs every polling task once (single-threaded deterministic mode).
  size_t Step();
  // Runs until no task moves a packet.
  size_t RunUntilIdle();

  // Drains transmitted frames from `port`; caller owns the packets.
  size_t DrainPort(int port, Packet** out, size_t max);

  // Total packets forwarded out of all ports so far.
  uint64_t total_tx_packets() const;
  uint64_t total_rx_packets() const;

  const SingleServerConfig& config() const { return config_; }

 private:
  void BuildGraph();

  SingleServerConfig config_;
  std::unique_ptr<PacketPool> pool_;
  std::vector<std::unique_ptr<NicPort>> ports_;
  std::unique_ptr<LpmTable> table_;
  Router router_;
  bool initialized_ = false;
  telemetry::MetricRegistry* tele_registry_ = nullptr;
  telemetry::PathTracer* tele_tracer_ = nullptr;
};

}  // namespace rb

#endif  // RB_CORE_SINGLE_SERVER_ROUTER_HPP_
