file(REMOVE_RECURSE
  "librb_workload.a"
)
