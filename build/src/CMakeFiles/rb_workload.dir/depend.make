# Empty dependencies file for rb_workload.
# This may be replaced when dependencies are built.
