file(REMOVE_RECURSE
  "CMakeFiles/rb_workload.dir/workload/abilene.cpp.o"
  "CMakeFiles/rb_workload.dir/workload/abilene.cpp.o.d"
  "CMakeFiles/rb_workload.dir/workload/flows.cpp.o"
  "CMakeFiles/rb_workload.dir/workload/flows.cpp.o.d"
  "CMakeFiles/rb_workload.dir/workload/synthetic.cpp.o"
  "CMakeFiles/rb_workload.dir/workload/synthetic.cpp.o.d"
  "CMakeFiles/rb_workload.dir/workload/traffic_matrix.cpp.o"
  "CMakeFiles/rb_workload.dir/workload/traffic_matrix.cpp.o.d"
  "librb_workload.a"
  "librb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
