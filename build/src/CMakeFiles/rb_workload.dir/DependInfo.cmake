
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/abilene.cpp" "src/CMakeFiles/rb_workload.dir/workload/abilene.cpp.o" "gcc" "src/CMakeFiles/rb_workload.dir/workload/abilene.cpp.o.d"
  "/root/repo/src/workload/flows.cpp" "src/CMakeFiles/rb_workload.dir/workload/flows.cpp.o" "gcc" "src/CMakeFiles/rb_workload.dir/workload/flows.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/rb_workload.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/rb_workload.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/traffic_matrix.cpp" "src/CMakeFiles/rb_workload.dir/workload/traffic_matrix.cpp.o" "gcc" "src/CMakeFiles/rb_workload.dir/workload/traffic_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
