# Empty compiler generated dependencies file for rb_crypto.
# This may be replaced when dependencies are built.
