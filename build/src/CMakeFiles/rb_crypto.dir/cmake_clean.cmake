file(REMOVE_RECURSE
  "CMakeFiles/rb_crypto.dir/crypto/aes128.cpp.o"
  "CMakeFiles/rb_crypto.dir/crypto/aes128.cpp.o.d"
  "CMakeFiles/rb_crypto.dir/crypto/cbc.cpp.o"
  "CMakeFiles/rb_crypto.dir/crypto/cbc.cpp.o.d"
  "CMakeFiles/rb_crypto.dir/crypto/esp.cpp.o"
  "CMakeFiles/rb_crypto.dir/crypto/esp.cpp.o.d"
  "librb_crypto.a"
  "librb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
