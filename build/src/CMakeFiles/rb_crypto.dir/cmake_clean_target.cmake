file(REMOVE_RECURSE
  "librb_crypto.a"
)
