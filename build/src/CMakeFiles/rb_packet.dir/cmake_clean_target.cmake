file(REMOVE_RECURSE
  "librb_packet.a"
)
