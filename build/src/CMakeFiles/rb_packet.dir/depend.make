# Empty dependencies file for rb_packet.
# This may be replaced when dependencies are built.
