file(REMOVE_RECURSE
  "CMakeFiles/rb_packet.dir/packet/checksum.cpp.o"
  "CMakeFiles/rb_packet.dir/packet/checksum.cpp.o.d"
  "CMakeFiles/rb_packet.dir/packet/flow.cpp.o"
  "CMakeFiles/rb_packet.dir/packet/flow.cpp.o.d"
  "CMakeFiles/rb_packet.dir/packet/headers.cpp.o"
  "CMakeFiles/rb_packet.dir/packet/headers.cpp.o.d"
  "CMakeFiles/rb_packet.dir/packet/packet.cpp.o"
  "CMakeFiles/rb_packet.dir/packet/packet.cpp.o.d"
  "CMakeFiles/rb_packet.dir/packet/pool.cpp.o"
  "CMakeFiles/rb_packet.dir/packet/pool.cpp.o.d"
  "librb_packet.a"
  "librb_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
