
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netdev/driver.cpp" "src/CMakeFiles/rb_netdev.dir/netdev/driver.cpp.o" "gcc" "src/CMakeFiles/rb_netdev.dir/netdev/driver.cpp.o.d"
  "/root/repo/src/netdev/nic.cpp" "src/CMakeFiles/rb_netdev.dir/netdev/nic.cpp.o" "gcc" "src/CMakeFiles/rb_netdev.dir/netdev/nic.cpp.o.d"
  "/root/repo/src/netdev/steering.cpp" "src/CMakeFiles/rb_netdev.dir/netdev/steering.cpp.o" "gcc" "src/CMakeFiles/rb_netdev.dir/netdev/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
