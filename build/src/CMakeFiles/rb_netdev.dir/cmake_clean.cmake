file(REMOVE_RECURSE
  "CMakeFiles/rb_netdev.dir/netdev/driver.cpp.o"
  "CMakeFiles/rb_netdev.dir/netdev/driver.cpp.o.d"
  "CMakeFiles/rb_netdev.dir/netdev/nic.cpp.o"
  "CMakeFiles/rb_netdev.dir/netdev/nic.cpp.o.d"
  "CMakeFiles/rb_netdev.dir/netdev/steering.cpp.o"
  "CMakeFiles/rb_netdev.dir/netdev/steering.cpp.o.d"
  "librb_netdev.a"
  "librb_netdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_netdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
