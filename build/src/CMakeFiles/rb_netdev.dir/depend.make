# Empty dependencies file for rb_netdev.
# This may be replaced when dependencies are built.
