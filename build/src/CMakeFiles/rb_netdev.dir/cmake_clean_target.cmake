file(REMOVE_RECURSE
  "librb_netdev.a"
)
