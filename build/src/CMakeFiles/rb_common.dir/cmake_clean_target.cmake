file(REMOVE_RECURSE
  "librb_common.a"
)
