file(REMOVE_RECURSE
  "CMakeFiles/rb_common.dir/common/flags.cpp.o"
  "CMakeFiles/rb_common.dir/common/flags.cpp.o.d"
  "CMakeFiles/rb_common.dir/common/log.cpp.o"
  "CMakeFiles/rb_common.dir/common/log.cpp.o.d"
  "CMakeFiles/rb_common.dir/common/rng.cpp.o"
  "CMakeFiles/rb_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/rb_common.dir/common/stats.cpp.o"
  "CMakeFiles/rb_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/rb_common.dir/common/strings.cpp.o"
  "CMakeFiles/rb_common.dir/common/strings.cpp.o.d"
  "librb_common.a"
  "librb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
