# Empty dependencies file for rb_common.
# This may be replaced when dependencies are built.
