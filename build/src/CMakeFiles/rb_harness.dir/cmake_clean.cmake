file(REMOVE_RECURSE
  "CMakeFiles/rb_harness.dir/harness/report.cpp.o"
  "CMakeFiles/rb_harness.dir/harness/report.cpp.o.d"
  "librb_harness.a"
  "librb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
