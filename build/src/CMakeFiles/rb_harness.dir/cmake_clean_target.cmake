file(REMOVE_RECURSE
  "librb_harness.a"
)
