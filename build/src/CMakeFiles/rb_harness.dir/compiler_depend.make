# Empty compiler generated dependencies file for rb_harness.
# This may be replaced when dependencies are built.
