file(REMOVE_RECURSE
  "CMakeFiles/rb_cluster.dir/cluster/des.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/des.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/flowlet.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/flowlet.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/latency.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/latency.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/node.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/node.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/reorder.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/reorder.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/sizing.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/sizing.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/topology.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/topology.cpp.o.d"
  "CMakeFiles/rb_cluster.dir/cluster/vlb.cpp.o"
  "CMakeFiles/rb_cluster.dir/cluster/vlb.cpp.o.d"
  "librb_cluster.a"
  "librb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
