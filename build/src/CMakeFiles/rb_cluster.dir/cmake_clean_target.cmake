file(REMOVE_RECURSE
  "librb_cluster.a"
)
