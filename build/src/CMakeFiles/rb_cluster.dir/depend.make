# Empty dependencies file for rb_cluster.
# This may be replaced when dependencies are built.
