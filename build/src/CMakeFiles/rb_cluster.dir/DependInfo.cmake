
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/des.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/des.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/des.cpp.o.d"
  "/root/repo/src/cluster/flowlet.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/flowlet.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/flowlet.cpp.o.d"
  "/root/repo/src/cluster/latency.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/latency.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/latency.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/reorder.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/reorder.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/reorder.cpp.o.d"
  "/root/repo/src/cluster/sizing.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/sizing.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/sizing.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/topology.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/topology.cpp.o.d"
  "/root/repo/src/cluster/vlb.cpp" "src/CMakeFiles/rb_cluster.dir/cluster/vlb.cpp.o" "gcc" "src/CMakeFiles/rb_cluster.dir/cluster/vlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
