# Empty dependencies file for rb_click.
# This may be replaced when dependencies are built.
