file(REMOVE_RECURSE
  "librb_click.a"
)
