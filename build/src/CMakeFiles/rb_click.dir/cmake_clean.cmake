file(REMOVE_RECURSE
  "CMakeFiles/rb_click.dir/click/config_parser.cpp.o"
  "CMakeFiles/rb_click.dir/click/config_parser.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/element.cpp.o"
  "CMakeFiles/rb_click.dir/click/element.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/check_ip_header.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/check_ip_header.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/classifier.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/classifier.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/dec_ip_ttl.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/dec_ip_ttl.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/ether.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/ether.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/from_device.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/from_device.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/ip_lookup.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/ip_lookup.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/ipsec.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/ipsec.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/misc.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/misc.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/queue.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/queue.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/elements/to_device.cpp.o"
  "CMakeFiles/rb_click.dir/click/elements/to_device.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/router.cpp.o"
  "CMakeFiles/rb_click.dir/click/router.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/scheduler.cpp.o"
  "CMakeFiles/rb_click.dir/click/scheduler.cpp.o.d"
  "CMakeFiles/rb_click.dir/click/task.cpp.o"
  "CMakeFiles/rb_click.dir/click/task.cpp.o.d"
  "librb_click.a"
  "librb_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
