
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/config_parser.cpp" "src/CMakeFiles/rb_click.dir/click/config_parser.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/config_parser.cpp.o.d"
  "/root/repo/src/click/element.cpp" "src/CMakeFiles/rb_click.dir/click/element.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/element.cpp.o.d"
  "/root/repo/src/click/elements/check_ip_header.cpp" "src/CMakeFiles/rb_click.dir/click/elements/check_ip_header.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/check_ip_header.cpp.o.d"
  "/root/repo/src/click/elements/classifier.cpp" "src/CMakeFiles/rb_click.dir/click/elements/classifier.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/classifier.cpp.o.d"
  "/root/repo/src/click/elements/dec_ip_ttl.cpp" "src/CMakeFiles/rb_click.dir/click/elements/dec_ip_ttl.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/dec_ip_ttl.cpp.o.d"
  "/root/repo/src/click/elements/ether.cpp" "src/CMakeFiles/rb_click.dir/click/elements/ether.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/ether.cpp.o.d"
  "/root/repo/src/click/elements/from_device.cpp" "src/CMakeFiles/rb_click.dir/click/elements/from_device.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/from_device.cpp.o.d"
  "/root/repo/src/click/elements/ip_lookup.cpp" "src/CMakeFiles/rb_click.dir/click/elements/ip_lookup.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/ip_lookup.cpp.o.d"
  "/root/repo/src/click/elements/ipsec.cpp" "src/CMakeFiles/rb_click.dir/click/elements/ipsec.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/ipsec.cpp.o.d"
  "/root/repo/src/click/elements/misc.cpp" "src/CMakeFiles/rb_click.dir/click/elements/misc.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/misc.cpp.o.d"
  "/root/repo/src/click/elements/queue.cpp" "src/CMakeFiles/rb_click.dir/click/elements/queue.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/queue.cpp.o.d"
  "/root/repo/src/click/elements/to_device.cpp" "src/CMakeFiles/rb_click.dir/click/elements/to_device.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/elements/to_device.cpp.o.d"
  "/root/repo/src/click/router.cpp" "src/CMakeFiles/rb_click.dir/click/router.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/router.cpp.o.d"
  "/root/repo/src/click/scheduler.cpp" "src/CMakeFiles/rb_click.dir/click/scheduler.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/scheduler.cpp.o.d"
  "/root/repo/src/click/task.cpp" "src/CMakeFiles/rb_click.dir/click/task.cpp.o" "gcc" "src/CMakeFiles/rb_click.dir/click/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
