file(REMOVE_RECURSE
  "CMakeFiles/rb_lookup.dir/lookup/dir24_8.cpp.o"
  "CMakeFiles/rb_lookup.dir/lookup/dir24_8.cpp.o.d"
  "CMakeFiles/rb_lookup.dir/lookup/radix_trie.cpp.o"
  "CMakeFiles/rb_lookup.dir/lookup/radix_trie.cpp.o.d"
  "CMakeFiles/rb_lookup.dir/lookup/table_gen.cpp.o"
  "CMakeFiles/rb_lookup.dir/lookup/table_gen.cpp.o.d"
  "librb_lookup.a"
  "librb_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
