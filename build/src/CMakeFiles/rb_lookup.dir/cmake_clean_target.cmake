file(REMOVE_RECURSE
  "librb_lookup.a"
)
