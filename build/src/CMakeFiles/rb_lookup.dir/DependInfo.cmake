
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lookup/dir24_8.cpp" "src/CMakeFiles/rb_lookup.dir/lookup/dir24_8.cpp.o" "gcc" "src/CMakeFiles/rb_lookup.dir/lookup/dir24_8.cpp.o.d"
  "/root/repo/src/lookup/radix_trie.cpp" "src/CMakeFiles/rb_lookup.dir/lookup/radix_trie.cpp.o" "gcc" "src/CMakeFiles/rb_lookup.dir/lookup/radix_trie.cpp.o.d"
  "/root/repo/src/lookup/table_gen.cpp" "src/CMakeFiles/rb_lookup.dir/lookup/table_gen.cpp.o" "gcc" "src/CMakeFiles/rb_lookup.dir/lookup/table_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
