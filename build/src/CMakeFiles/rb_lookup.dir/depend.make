# Empty dependencies file for rb_lookup.
# This may be replaced when dependencies are built.
