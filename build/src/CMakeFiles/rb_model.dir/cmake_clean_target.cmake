file(REMOVE_RECURSE
  "librb_model.a"
)
