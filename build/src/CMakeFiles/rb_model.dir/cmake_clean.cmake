file(REMOVE_RECURSE
  "CMakeFiles/rb_model.dir/model/app_profile.cpp.o"
  "CMakeFiles/rb_model.dir/model/app_profile.cpp.o.d"
  "CMakeFiles/rb_model.dir/model/batching.cpp.o"
  "CMakeFiles/rb_model.dir/model/batching.cpp.o.d"
  "CMakeFiles/rb_model.dir/model/extrapolate.cpp.o"
  "CMakeFiles/rb_model.dir/model/extrapolate.cpp.o.d"
  "CMakeFiles/rb_model.dir/model/scenarios.cpp.o"
  "CMakeFiles/rb_model.dir/model/scenarios.cpp.o.d"
  "CMakeFiles/rb_model.dir/model/server_spec.cpp.o"
  "CMakeFiles/rb_model.dir/model/server_spec.cpp.o.d"
  "CMakeFiles/rb_model.dir/model/throughput.cpp.o"
  "CMakeFiles/rb_model.dir/model/throughput.cpp.o.d"
  "librb_model.a"
  "librb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
