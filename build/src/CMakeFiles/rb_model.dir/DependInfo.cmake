
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/app_profile.cpp" "src/CMakeFiles/rb_model.dir/model/app_profile.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/app_profile.cpp.o.d"
  "/root/repo/src/model/batching.cpp" "src/CMakeFiles/rb_model.dir/model/batching.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/batching.cpp.o.d"
  "/root/repo/src/model/extrapolate.cpp" "src/CMakeFiles/rb_model.dir/model/extrapolate.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/extrapolate.cpp.o.d"
  "/root/repo/src/model/scenarios.cpp" "src/CMakeFiles/rb_model.dir/model/scenarios.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/scenarios.cpp.o.d"
  "/root/repo/src/model/server_spec.cpp" "src/CMakeFiles/rb_model.dir/model/server_spec.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/server_spec.cpp.o.d"
  "/root/repo/src/model/throughput.cpp" "src/CMakeFiles/rb_model.dir/model/throughput.cpp.o" "gcc" "src/CMakeFiles/rb_model.dir/model/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
