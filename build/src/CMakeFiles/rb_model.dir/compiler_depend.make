# Empty compiler generated dependencies file for rb_model.
# This may be replaced when dependencies are built.
