# Empty dependencies file for rb_core.
# This may be replaced when dependencies are built.
