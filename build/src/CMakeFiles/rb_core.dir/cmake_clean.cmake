file(REMOVE_RECURSE
  "CMakeFiles/rb_core.dir/core/cluster_router.cpp.o"
  "CMakeFiles/rb_core.dir/core/cluster_router.cpp.o.d"
  "CMakeFiles/rb_core.dir/core/router_config.cpp.o"
  "CMakeFiles/rb_core.dir/core/router_config.cpp.o.d"
  "CMakeFiles/rb_core.dir/core/single_server_router.cpp.o"
  "CMakeFiles/rb_core.dir/core/single_server_router.cpp.o.d"
  "librb_core.a"
  "librb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
