# Empty dependencies file for rb_tests.
# This may be replaced when dependencies are built.
