
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/click/config_parser_test.cpp" "tests/CMakeFiles/rb_tests.dir/click/config_parser_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/click/config_parser_test.cpp.o.d"
  "/root/repo/tests/click/element_test.cpp" "tests/CMakeFiles/rb_tests.dir/click/element_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/click/element_test.cpp.o.d"
  "/root/repo/tests/click/elements_test.cpp" "tests/CMakeFiles/rb_tests.dir/click/elements_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/click/elements_test.cpp.o.d"
  "/root/repo/tests/click/router_test.cpp" "tests/CMakeFiles/rb_tests.dir/click/router_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/click/router_test.cpp.o.d"
  "/root/repo/tests/click/scheduler_test.cpp" "tests/CMakeFiles/rb_tests.dir/click/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/click/scheduler_test.cpp.o.d"
  "/root/repo/tests/cluster/des_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/des_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/des_test.cpp.o.d"
  "/root/repo/tests/cluster/flowlet_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/flowlet_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/flowlet_test.cpp.o.d"
  "/root/repo/tests/cluster/latency_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/latency_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/latency_test.cpp.o.d"
  "/root/repo/tests/cluster/node_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/node_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/node_test.cpp.o.d"
  "/root/repo/tests/cluster/reorder_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/reorder_test.cpp.o.d"
  "/root/repo/tests/cluster/sizing_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/sizing_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/sizing_test.cpp.o.d"
  "/root/repo/tests/cluster/topology_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/topology_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/topology_test.cpp.o.d"
  "/root/repo/tests/cluster/vlb_test.cpp" "tests/CMakeFiles/rb_tests.dir/cluster/vlb_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/cluster/vlb_test.cpp.o.d"
  "/root/repo/tests/common/flags_test.cpp" "tests/CMakeFiles/rb_tests.dir/common/flags_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/common/flags_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/rb_tests.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/rb_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/rb_tests.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/core/cluster_router_test.cpp" "tests/CMakeFiles/rb_tests.dir/core/cluster_router_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/core/cluster_router_test.cpp.o.d"
  "/root/repo/tests/core/single_server_router_test.cpp" "tests/CMakeFiles/rb_tests.dir/core/single_server_router_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/core/single_server_router_test.cpp.o.d"
  "/root/repo/tests/crypto/aes128_test.cpp" "tests/CMakeFiles/rb_tests.dir/crypto/aes128_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/crypto/aes128_test.cpp.o.d"
  "/root/repo/tests/crypto/cbc_test.cpp" "tests/CMakeFiles/rb_tests.dir/crypto/cbc_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/crypto/cbc_test.cpp.o.d"
  "/root/repo/tests/crypto/esp_test.cpp" "tests/CMakeFiles/rb_tests.dir/crypto/esp_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/crypto/esp_test.cpp.o.d"
  "/root/repo/tests/integration/cluster_integration_test.cpp" "tests/CMakeFiles/rb_tests.dir/integration/cluster_integration_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/integration/cluster_integration_test.cpp.o.d"
  "/root/repo/tests/integration/paper_numbers_test.cpp" "tests/CMakeFiles/rb_tests.dir/integration/paper_numbers_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/integration/paper_numbers_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_integration_test.cpp" "tests/CMakeFiles/rb_tests.dir/integration/pipeline_integration_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/integration/pipeline_integration_test.cpp.o.d"
  "/root/repo/tests/integration/property_sweep_test.cpp" "tests/CMakeFiles/rb_tests.dir/integration/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/integration/property_sweep_test.cpp.o.d"
  "/root/repo/tests/lookup/dir24_8_test.cpp" "tests/CMakeFiles/rb_tests.dir/lookup/dir24_8_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/lookup/dir24_8_test.cpp.o.d"
  "/root/repo/tests/lookup/radix_trie_test.cpp" "tests/CMakeFiles/rb_tests.dir/lookup/radix_trie_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/lookup/radix_trie_test.cpp.o.d"
  "/root/repo/tests/lookup/table_gen_test.cpp" "tests/CMakeFiles/rb_tests.dir/lookup/table_gen_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/lookup/table_gen_test.cpp.o.d"
  "/root/repo/tests/model/app_profile_test.cpp" "tests/CMakeFiles/rb_tests.dir/model/app_profile_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/model/app_profile_test.cpp.o.d"
  "/root/repo/tests/model/batching_test.cpp" "tests/CMakeFiles/rb_tests.dir/model/batching_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/model/batching_test.cpp.o.d"
  "/root/repo/tests/model/scenarios_test.cpp" "tests/CMakeFiles/rb_tests.dir/model/scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/model/scenarios_test.cpp.o.d"
  "/root/repo/tests/model/server_spec_test.cpp" "tests/CMakeFiles/rb_tests.dir/model/server_spec_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/model/server_spec_test.cpp.o.d"
  "/root/repo/tests/model/throughput_test.cpp" "tests/CMakeFiles/rb_tests.dir/model/throughput_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/model/throughput_test.cpp.o.d"
  "/root/repo/tests/netdev/driver_test.cpp" "tests/CMakeFiles/rb_tests.dir/netdev/driver_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/netdev/driver_test.cpp.o.d"
  "/root/repo/tests/netdev/nic_test.cpp" "tests/CMakeFiles/rb_tests.dir/netdev/nic_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/netdev/nic_test.cpp.o.d"
  "/root/repo/tests/netdev/ring_test.cpp" "tests/CMakeFiles/rb_tests.dir/netdev/ring_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/netdev/ring_test.cpp.o.d"
  "/root/repo/tests/netdev/steering_test.cpp" "tests/CMakeFiles/rb_tests.dir/netdev/steering_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/netdev/steering_test.cpp.o.d"
  "/root/repo/tests/packet/checksum_test.cpp" "tests/CMakeFiles/rb_tests.dir/packet/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/packet/checksum_test.cpp.o.d"
  "/root/repo/tests/packet/flow_test.cpp" "tests/CMakeFiles/rb_tests.dir/packet/flow_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/packet/flow_test.cpp.o.d"
  "/root/repo/tests/packet/headers_test.cpp" "tests/CMakeFiles/rb_tests.dir/packet/headers_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/packet/headers_test.cpp.o.d"
  "/root/repo/tests/packet/packet_test.cpp" "tests/CMakeFiles/rb_tests.dir/packet/packet_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/packet/packet_test.cpp.o.d"
  "/root/repo/tests/packet/pool_test.cpp" "tests/CMakeFiles/rb_tests.dir/packet/pool_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/packet/pool_test.cpp.o.d"
  "/root/repo/tests/workload/abilene_test.cpp" "tests/CMakeFiles/rb_tests.dir/workload/abilene_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/workload/abilene_test.cpp.o.d"
  "/root/repo/tests/workload/flows_test.cpp" "tests/CMakeFiles/rb_tests.dir/workload/flows_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/workload/flows_test.cpp.o.d"
  "/root/repo/tests/workload/synthetic_test.cpp" "tests/CMakeFiles/rb_tests.dir/workload/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/workload/synthetic_test.cpp.o.d"
  "/root/repo/tests/workload/traffic_matrix_test.cpp" "tests/CMakeFiles/rb_tests.dir/workload/traffic_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/rb_tests.dir/workload/traffic_matrix_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_click.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
