file(REMOVE_RECURSE
  "CMakeFiles/rb4_cluster.dir/rb4_cluster.cpp.o"
  "CMakeFiles/rb4_cluster.dir/rb4_cluster.cpp.o.d"
  "rb4_cluster"
  "rb4_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb4_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
