# Empty compiler generated dependencies file for rb4_cluster.
# This may be replaced when dependencies are built.
