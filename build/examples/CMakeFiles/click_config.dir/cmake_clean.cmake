file(REMOVE_RECURSE
  "CMakeFiles/click_config.dir/click_config.cpp.o"
  "CMakeFiles/click_config.dir/click_config.cpp.o.d"
  "click_config"
  "click_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
