# Empty compiler generated dependencies file for click_config.
# This may be replaced when dependencies are built.
