# Empty dependencies file for bench_projection_nextgen.
# This may be replaced when dependencies are built.
