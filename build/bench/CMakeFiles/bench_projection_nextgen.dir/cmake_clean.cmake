file(REMOVE_RECURSE
  "CMakeFiles/bench_projection_nextgen.dir/bench_projection_nextgen.cpp.o"
  "CMakeFiles/bench_projection_nextgen.dir/bench_projection_nextgen.cpp.o.d"
  "bench_projection_nextgen"
  "bench_projection_nextgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_projection_nextgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
