file(REMOVE_RECURSE
  "CMakeFiles/bench_rb4_reordering.dir/bench_rb4_reordering.cpp.o"
  "CMakeFiles/bench_rb4_reordering.dir/bench_rb4_reordering.cpp.o.d"
  "bench_rb4_reordering"
  "bench_rb4_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rb4_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
