# Empty compiler generated dependencies file for bench_rb4_reordering.
# This may be replaced when dependencies are built.
