
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rb4_reordering.cpp" "bench/CMakeFiles/bench_rb4_reordering.dir/bench_rb4_reordering.cpp.o" "gcc" "bench/CMakeFiles/bench_rb4_reordering.dir/bench_rb4_reordering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_click.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_netdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
