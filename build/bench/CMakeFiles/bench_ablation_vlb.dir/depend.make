# Empty dependencies file for bench_ablation_vlb.
# This may be replaced when dependencies are built.
