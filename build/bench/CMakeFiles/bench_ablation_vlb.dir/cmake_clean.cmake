file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vlb.dir/bench_ablation_vlb.cpp.o"
  "CMakeFiles/bench_ablation_vlb.dir/bench_ablation_vlb.cpp.o.d"
  "bench_ablation_vlb"
  "bench_ablation_vlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
