file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multiqueue.dir/bench_fig6_multiqueue.cpp.o"
  "CMakeFiles/bench_fig6_multiqueue.dir/bench_fig6_multiqueue.cpp.o.d"
  "bench_fig6_multiqueue"
  "bench_fig6_multiqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multiqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
