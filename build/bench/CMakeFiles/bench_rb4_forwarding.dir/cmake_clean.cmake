file(REMOVE_RECURSE
  "CMakeFiles/bench_rb4_forwarding.dir/bench_rb4_forwarding.cpp.o"
  "CMakeFiles/bench_rb4_forwarding.dir/bench_rb4_forwarding.cpp.o.d"
  "bench_rb4_forwarding"
  "bench_rb4_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rb4_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
