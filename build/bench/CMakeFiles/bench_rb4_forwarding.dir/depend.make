# Empty dependencies file for bench_rb4_forwarding.
# This may be replaced when dependencies are built.
