# Empty compiler generated dependencies file for bench_rb4_latency.
# This may be replaced when dependencies are built.
