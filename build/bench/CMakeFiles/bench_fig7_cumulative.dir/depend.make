# Empty dependencies file for bench_fig7_cumulative.
# This may be replaced when dependencies are built.
