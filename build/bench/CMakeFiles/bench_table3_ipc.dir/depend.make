# Empty dependencies file for bench_table3_ipc.
# This may be replaced when dependencies are built.
