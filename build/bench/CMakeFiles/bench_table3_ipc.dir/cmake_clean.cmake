file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ipc.dir/bench_table3_ipc.cpp.o"
  "CMakeFiles/bench_table3_ipc.dir/bench_table3_ipc.cpp.o.d"
  "bench_table3_ipc"
  "bench_table3_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
