# Empty dependencies file for bench_ablation_resequencer.
# This may be replaced when dependencies are built.
