file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resequencer.dir/bench_ablation_resequencer.cpp.o"
  "CMakeFiles/bench_ablation_resequencer.dir/bench_ablation_resequencer.cpp.o.d"
  "bench_ablation_resequencer"
  "bench_ablation_resequencer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resequencer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
