# Empty dependencies file for bench_fig3_cluster_sizing.
# This may be replaced when dependencies are built.
