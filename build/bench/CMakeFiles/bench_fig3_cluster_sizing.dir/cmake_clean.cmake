file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cluster_sizing.dir/bench_fig3_cluster_sizing.cpp.o"
  "CMakeFiles/bench_fig3_cluster_sizing.dir/bench_fig3_cluster_sizing.cpp.o.d"
  "bench_fig3_cluster_sizing"
  "bench_fig3_cluster_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cluster_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
